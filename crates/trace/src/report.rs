//! The versioned machine-readable run report.
//!
//! `cfp-mine --profile out.json` (and `cfp-bench`'s per-run profiles)
//! serialise a [`RunReport`] — one JSON document per mining run capturing
//! phase spans, the full counter registry, histogram sketches, and the
//! memory time series. The document is self-describing via its `schema`
//! field; consumers must check it before reading anything else.

use crate::counters;
use crate::events::EventsSummary;
use crate::json::Json;
use crate::memstat::MemSummary;
use crate::sampler::Sample;
use crate::span::{self, PhaseSpan};

/// Schema identifier of the current report layout. `/2` adds the
/// `events` summary block (with its `dropped_events` accounting) for the
/// event-timeline layer; everything a `/1` consumer reads is unchanged.
pub const SCHEMA: &str = "cfp-profile/2";

/// The previous schema. [`schema_is_supported`] keeps accepting it: `/2`
/// only added fields, so `/1` documents parse with the same code.
pub const SCHEMA_V1: &str = "cfp-profile/1";

/// Whether `schema` names a report layout this crate can read.
pub fn schema_is_supported(schema: &str) -> bool {
    schema == SCHEMA || schema == SCHEMA_V1
}

/// One rung of the recovery ladder, as reported by the run supervisor.
#[derive(Clone, Debug)]
pub struct RungOutcome {
    /// Rung name: `"retry"`, `"degrade"`, or `"partition"`.
    pub rung: String,
    /// Whether this rung completed the run.
    pub succeeded: bool,
    /// Bytes compaction returned to the footprint during this rung.
    pub reclaimed_bytes: u64,
    /// Partitions mined in this rung (0 for non-partition rungs).
    pub partitions: u64,
    /// The error that ended this rung, if it failed.
    pub error: Option<String>,
}

/// The `degradation` section of a profile: what the supervisor did after
/// the initial attempt failed. Absent on healthy runs (additive to the
/// `cfp-profile/1` schema).
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// Recovery policy in force (`"retry"`, `"degrade"`, `"partition"`).
    pub policy: String,
    /// Rungs attempted, in ladder order; each at most once.
    pub rungs: Vec<RungOutcome>,
    /// Whether some rung completed the run.
    pub recovered: bool,
    /// Final partition count the database was mined under (0 when the
    /// partition rung was never reached).
    pub final_partitions: u64,
}

/// Everything `--profile` writes about one mining run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Dataset path or profile name.
    pub dataset: String,
    /// Transactions mined.
    pub transactions: u64,
    /// Absolute minimum support used.
    pub support: u64,
    /// Algorithm name as selected on the command line.
    pub algorithm: String,
    /// Worker threads (1 = sequential).
    pub threads: u64,
    /// Mine-phase schedule of a parallel run (`"static"` or
    /// `"dynamic"`); absent for sequential runs and non-cfp algorithms
    /// (additive to the `cfp-profile/1` schema).
    pub schedule: Option<String>,
    /// Frequent itemsets found.
    pub itemsets: u64,
    /// End-to-end wall time of the run in nanoseconds.
    pub wall_nanos: u64,
    /// Accumulated per-phase spans, in pipeline order.
    pub phases: Vec<PhaseSpan>,
    /// Counter/gauge registry snapshot, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram snapshots (dense bucket vectors).
    pub histograms: Vec<(&'static str, Vec<u64>)>,
    /// Peak tracked bytes over the run.
    pub peak_bytes: u64,
    /// Tracked bytes at the end of the run.
    pub final_bytes: u64,
    /// Memory time series (at least two samples: start and stop).
    pub samples: Vec<Sample>,
    /// Recovery-ladder activity, present only for degraded runs.
    pub degradation: Option<DegradationReport>,
    /// Event-timeline summary, present when the caller attached one via
    /// [`with_events`](Self::with_events) (additive in `cfp-profile/2`).
    pub events: Option<EventsSummary>,
    /// Per-component memory summary, present when the caller attached
    /// one via [`with_memstat`](Self::with_memstat) (additive in
    /// `cfp-profile/2`; see the `cfp-memstat/1` document for the full
    /// space-domain report).
    pub memstat: Option<MemSummary>,
}

impl RunReport {
    /// Snapshots the global registry and phase spans into a report.
    /// Run metadata (`dataset`, `support`, ...) comes from the caller;
    /// everything else is read from the instrumentation state.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        dataset: impl Into<String>,
        transactions: u64,
        support: u64,
        algorithm: impl Into<String>,
        threads: u64,
        itemsets: u64,
        wall_nanos: u64,
        samples: Vec<Sample>,
    ) -> Self {
        RunReport {
            dataset: dataset.into(),
            transactions,
            support,
            algorithm: algorithm.into(),
            threads,
            itemsets,
            wall_nanos,
            schedule: None,
            phases: span::phase_snapshot(),
            counters: counters::snapshot(),
            histograms: counters::histogram_snapshot(),
            peak_bytes: counters::MEM_PEAK_BYTES.get(),
            final_bytes: counters::MEM_CURRENT_BYTES.get(),
            samples,
            degradation: None,
            events: None,
            memstat: None,
        }
    }

    /// Records the mine-phase schedule of a parallel run in the `run`
    /// section.
    pub fn with_schedule(mut self, schedule: impl Into<String>) -> Self {
        self.schedule = Some(schedule.into());
        self
    }

    /// Attaches the supervisor's degradation section to the report.
    pub fn with_degradation(mut self, degradation: DegradationReport) -> Self {
        self.degradation = Some(degradation);
        self
    }

    /// Attaches the event-timeline summary (usually
    /// [`crate::events::summary`]) to the report.
    pub fn with_events(mut self, events: EventsSummary) -> Self {
        self.events = Some(events);
        self
    }

    /// Attaches the per-component memory summary (usually
    /// [`MemStatReport::summary`](crate::memstat::MemStatReport::summary))
    /// to the report.
    pub fn with_memstat(mut self, memstat: MemSummary) -> Self {
        self.memstat = Some(memstat);
        self
    }

    /// Serialises to the `cfp-profile/2` JSON document.
    pub fn to_json(&self) -> Json {
        let mut run_fields = vec![
            ("dataset".into(), Json::str(self.dataset.clone())),
            ("transactions".into(), Json::u64(self.transactions)),
            ("support".into(), Json::u64(self.support)),
            ("algorithm".into(), Json::str(self.algorithm.clone())),
            ("threads".into(), Json::u64(self.threads)),
        ];
        if let Some(s) = &self.schedule {
            run_fields.push(("schedule".into(), Json::str(s.clone())));
        }
        run_fields.push(("itemsets".into(), Json::u64(self.itemsets)));
        run_fields.push(("wall_nanos".into(), Json::u64(self.wall_nanos)));
        let run = Json::Obj(run_fields);
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(p.name)),
                        ("nanos".into(), Json::u64(p.nanos)),
                        ("count".into(), Json::u64(p.count)),
                    ])
                })
                .collect(),
        );
        let counters = Json::Obj(
            self.counters.iter().map(|&(name, v)| (name.to_string(), Json::u64(v))).collect(),
        );
        // Histograms are sparse in practice (a handful of mask bytes, a
        // dozen depths), so emit [bucket, count] pairs for non-zero
        // buckets instead of dense vectors.
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(name, buckets)| {
                    let pairs = buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c != 0)
                        .map(|(i, &c)| Json::Arr(vec![Json::u64(i as u64), Json::u64(c)]))
                        .collect();
                    (name.to_string(), Json::Arr(pairs))
                })
                .collect(),
        );
        let samples = Json::Arr(
            self.samples
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("at_ms".into(), Json::u64(s.at_ms)),
                        ("mem_current".into(), Json::u64(s.mem_current)),
                        ("mem_peak".into(), Json::u64(s.mem_peak)),
                        ("arena_used".into(), Json::u64(s.arena_used)),
                        ("arena_footprint".into(), Json::u64(s.arena_footprint)),
                    ])
                })
                .collect(),
        );
        let memory = Json::Obj(vec![
            ("peak_bytes".into(), Json::u64(self.peak_bytes)),
            ("final_bytes".into(), Json::u64(self.final_bytes)),
            ("samples".into(), samples),
        ]);
        let mut doc = vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("run".into(), run),
            ("phases".into(), phases),
            ("counters".into(), counters),
            ("histograms".into(), histograms),
            ("memory".into(), memory),
        ];
        if let Some(m) = &self.memstat {
            doc.push(("memstat".into(), m.to_json()));
        }
        if let Some(e) = &self.events {
            doc.push((
                "events".into(),
                Json::Obj(vec![
                    ("tracks".into(), Json::u64(e.tracks)),
                    ("recorded".into(), Json::u64(e.recorded)),
                    ("dropped_events".into(), Json::u64(e.dropped_events)),
                    (
                        "by_kind".into(),
                        Json::Obj(
                            e.by_kind
                                .iter()
                                .map(|&(name, count)| (name.to_string(), Json::u64(count)))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(d) = &self.degradation {
            let rungs = Json::Arr(
                d.rungs
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("rung".into(), Json::str(r.rung.clone())),
                            ("succeeded".into(), Json::Bool(r.succeeded)),
                            ("reclaimed_bytes".into(), Json::u64(r.reclaimed_bytes)),
                            ("partitions".into(), Json::u64(r.partitions)),
                            (
                                "error".into(),
                                match &r.error {
                                    Some(e) => Json::str(e.clone()),
                                    None => Json::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            );
            doc.push((
                "degradation".into(),
                Json::Obj(vec![
                    ("policy".into(), Json::str(d.policy.clone())),
                    ("rungs".into(), rungs),
                    ("recovered".into(), Json::Bool(d.recovered)),
                    ("final_partitions".into(), Json::u64(d.final_partitions)),
                ]),
            ));
        }
        Json::Obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample(at_ms: u64, current: u64) -> Sample {
        Sample {
            at_ms,
            mem_current: current,
            mem_peak: current,
            arena_used: current / 2,
            arena_footprint: current,
        }
    }

    #[test]
    fn report_serialises_and_parses_with_schema() {
        let report = RunReport::capture(
            "retail-like",
            30_000,
            240,
            "cfp",
            1,
            9_000,
            1_234_567,
            vec![sample(0, 100), sample(10, 4096)],
        );
        let text = report.to_json().to_pretty();
        let doc = json::parse(&text).expect("report must be valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let run = doc.get("run").expect("run object");
        assert_eq!(run.get("support").and_then(Json::as_u64), Some(240));
        assert_eq!(run.get("algorithm").and_then(Json::as_str), Some("cfp"));
        let phases = doc.get("phases").and_then(Json::as_arr).expect("phases");
        assert_eq!(phases.len(), 7, "one entry per pipeline phase");
        assert_eq!(
            phases[0].get("name").and_then(Json::as_str),
            Some("read"),
            "phases stay in pipeline order"
        );
        let samples = doc
            .get("memory")
            .and_then(|m| m.get("samples"))
            .and_then(Json::as_arr)
            .expect("memory.samples");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].get("arena_footprint").and_then(Json::as_u64), Some(4096));
    }

    #[test]
    fn schedule_field_is_absent_by_default_and_round_trips() {
        let base = RunReport::capture("d", 1, 1, "cfp", 4, 0, 1, vec![]);
        let doc = json::parse(&base.to_json().to_compact()).unwrap();
        assert!(doc.get("run").unwrap().get("schedule").is_none());

        let doc = json::parse(&base.with_schedule("dynamic").to_json().to_pretty()).unwrap();
        let run = doc.get("run").expect("run object");
        assert_eq!(run.get("schedule").and_then(Json::as_str), Some("dynamic"));
        assert_eq!(run.get("threads").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn histograms_are_sparse_pairs() {
        crate::counters::TREE_MASK_BYTES.record(0x0F);
        let report = RunReport::capture("d", 1, 1, "cfp", 1, 0, 1, vec![]);
        let doc = json::parse(&report.to_json().to_compact()).unwrap();
        let mask = doc
            .get("histograms")
            .and_then(|h| h.get("tree.mask_bytes"))
            .and_then(Json::as_arr)
            .expect("mask histogram");
        assert!(mask
            .iter()
            .any(|pair| pair.as_arr().map(|p| p[0].as_u64() == Some(0x0F)) == Some(true)));
        crate::counters::TREE_MASK_BYTES.reset();
    }

    #[test]
    fn counters_appear_by_name() {
        let report = RunReport::capture("d", 1, 1, "cfp", 1, 0, 1, vec![]);
        let doc = json::parse(&report.to_json().to_compact()).unwrap();
        let counters = doc.get("counters").expect("counters object");
        assert!(counters.get("memman.allocs").is_some());
        assert!(counters.get("core.conditional_trees").is_some());
    }

    #[test]
    fn both_schema_generations_are_supported() {
        assert!(schema_is_supported(SCHEMA));
        assert!(schema_is_supported("cfp-profile/1"), "v1 documents must keep parsing");
        assert!(schema_is_supported("cfp-profile/2"));
        assert!(!schema_is_supported("cfp-profile/3"));
        assert!(!schema_is_supported("something-else/1"));
    }

    #[test]
    fn events_section_is_absent_by_default_and_round_trips() {
        let base = RunReport::capture("d", 1, 1, "cfp", 1, 0, 1, vec![]);
        let doc = json::parse(&base.to_json().to_compact()).unwrap();
        assert!(doc.get("events").is_none(), "no events block unless attached");

        let with = base.with_events(EventsSummary {
            tracks: 4,
            recorded: 1000,
            dropped_events: 12,
            by_kind: vec![("phase_begin", 6), ("task_claim", 982)],
        });
        let doc = json::parse(&with.to_json().to_pretty()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("cfp-profile/2"));
        let events = doc.get("events").expect("events section");
        assert_eq!(events.get("tracks").and_then(Json::as_u64), Some(4));
        assert_eq!(events.get("dropped_events").and_then(Json::as_u64), Some(12));
        let by_kind = events.get("by_kind").expect("by_kind map");
        assert_eq!(by_kind.get("task_claim").and_then(Json::as_u64), Some(982));
    }

    #[test]
    fn memstat_section_is_absent_by_default_and_round_trips() {
        let base = RunReport::capture("d", 1, 1, "cfp", 1, 0, 1, vec![]);
        let doc = json::parse(&base.to_json().to_compact()).unwrap();
        assert!(doc.get("memstat").is_none(), "no memstat block unless attached");

        let with = base.with_memstat(MemSummary {
            pool_peak: 62213,
            reconciled: true,
            component_peaks: vec![("build-tree".into(), 50000), ("cond-trees".into(), 9000)],
        });
        let doc = json::parse(&with.to_json().to_pretty()).unwrap();
        let m = doc.get("memstat").expect("memstat section");
        assert_eq!(m.get("pool_peak").and_then(Json::as_u64), Some(62213));
        assert_eq!(m.get("reconciled"), Some(&Json::Bool(true)));
        let peaks = m.get("component_peaks").expect("component_peaks map");
        assert_eq!(peaks.get("cond-trees").and_then(Json::as_u64), Some(9000));
    }

    #[test]
    fn degradation_section_is_absent_by_default_and_round_trips() {
        let base = RunReport::capture("d", 1, 1, "cfp", 1, 0, 1, vec![]);
        let doc = json::parse(&base.to_json().to_compact()).unwrap();
        assert!(doc.get("degradation").is_none(), "healthy runs carry no degradation");

        let degraded = base.with_degradation(DegradationReport {
            policy: "partition".into(),
            rungs: vec![
                RungOutcome {
                    rung: "retry".into(),
                    succeeded: false,
                    reclaimed_bytes: 512,
                    partitions: 0,
                    error: Some("memory exhausted".into()),
                },
                RungOutcome {
                    rung: "partition".into(),
                    succeeded: true,
                    reclaimed_bytes: 0,
                    partitions: 4,
                    error: None,
                },
            ],
            recovered: true,
            final_partitions: 4,
        });
        let doc = json::parse(&degraded.to_json().to_pretty()).unwrap();
        let d = doc.get("degradation").expect("degradation section");
        assert_eq!(d.get("policy").and_then(Json::as_str), Some("partition"));
        assert_eq!(d.get("recovered"), Some(&Json::Bool(true)));
        assert_eq!(d.get("final_partitions").and_then(Json::as_u64), Some(4));
        let rungs = d.get("rungs").and_then(Json::as_arr).expect("rungs array");
        assert_eq!(rungs.len(), 2);
        assert_eq!(rungs[0].get("rung").and_then(Json::as_str), Some("retry"));
        assert_eq!(rungs[0].get("reclaimed_bytes").and_then(Json::as_u64), Some(512));
        assert_eq!(rungs[1].get("partitions").and_then(Json::as_u64), Some(4));
        assert_eq!(rungs[1].get("error"), Some(&Json::Null));
    }
}
