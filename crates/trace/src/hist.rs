//! Log-linear (HDR-style) latency histograms with lock-free atomic buckets.
//!
//! Each [`LatencyHisto`] is a fixed-memory, const-constructible histogram
//! recording `u64` samples (nanoseconds by convention). Values are binned
//! into power-of-two octaves, each split into `2^SUB_BITS` linear
//! sub-buckets, so the bucket containing a value `v >= 2^SUB_BITS` has
//! width `<= v / 2^SUB_BITS`: any reported percentile is within a
//! relative error of `2^-SUB_BITS` (6.25% for `SUB_BITS = 4`) of the
//! exact order statistic at the same rank. Values below `2^SUB_BITS`
//! are stored exactly (one bucket per integer).
//!
//! All state is plain `AtomicU64`s bumped with relaxed ordering, so
//! many worker threads can record into one static histogram without a
//! lock, and [`LatencyHisto::merge_from`] folds one histogram (or a
//! drained [`HistSnapshot`]) into another — merge is associative and
//! commutative, which the integration suite checks.
//!
//! Producers never call `record` directly on hot paths; they go through
//! [`timer`] / [`maybe_now`] + [`record_since`], which collapse to a
//! single relaxed load of the global trace gate when tracing is off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per octave (16).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: the first octave
/// holds values `0..2^SUB_BITS` exactly, and each of the remaining
/// `64 - SUB_BITS` octaves contributes `SUB` buckets.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Map a sample value to its bucket index.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    // Highest set bit; v >= 16 so msb >= SUB_BITS.
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB - 1);
    octave * SUB + sub
}

/// Inclusive lower bound of bucket `i` (the smallest value that maps to it).
pub fn bucket_lo(i: usize) -> u64 {
    let octave = i / SUB;
    let sub = (i % SUB) as u64;
    if octave == 0 {
        return sub;
    }
    (SUB as u64 + sub) << (octave - 1)
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_lo(i + 1)
}

/// Midpoint representative reported for a bucket. Exact for the
/// single-integer buckets below `2^SUB_BITS`.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lo(i);
    let hi = bucket_hi(i);
    lo + (hi - lo) / 2
}

/// A fixed-memory log-linear histogram with atomic buckets.
///
/// Const-constructible so instances can live in the static registry
/// alongside the counters; one instance is ~7.7 KiB.
pub struct LatencyHisto {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl LatencyHisto {
    /// Create an empty histogram (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        // `AtomicU64` is not Copy; build the array via a const block.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHisto {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; NUM_BUCKETS],
        }
    }

    /// The registry name, e.g. `core.mine_task_nanos`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample. Lock-free; callers on hot paths should gate on
    /// [`crate::enabled`] (the [`timer`] helpers do this for you).
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold another histogram's contents into this one (cross-worker
    /// merge). Bucket-wise addition plus a max-merge: associative and
    /// commutative.
    pub fn merge_from(&self, other: &LatencyHisto) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Fold a drained snapshot into this histogram.
    pub fn merge_snapshot(&self, snap: &HistSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
        for (i, &c) in snap.buckets.iter().enumerate() {
            if c != 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// Zero all state (between benchmark iterations / test cases).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state out into an owned snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            name: self.name,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Condensed percentiles for reports and metrics export.
    pub fn summary(&self) -> HistSummary {
        self.snapshot().summary()
    }
}

/// An owned, non-atomic copy of a histogram's state.
#[derive(Clone)]
pub struct HistSnapshot {
    /// The source histogram's registry name.
    pub name: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Per-bucket sample counts (`NUM_BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the sample of rank `ceil(q * count)` (1-based), clamped
    /// to the observed maximum. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// Condensed percentiles for reports and metrics export.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            name: self.name,
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

/// The percentile digest exported by metrics snapshots and blackbox
/// reports: p50/p90/p99/p99.9 plus exact count/sum/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSummary {
    /// The source histogram's registry name.
    pub name: &'static str,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median (log-linear approximation; see module docs for bounds).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

// ---------------------------------------------------------------------------
// Static registry
// ---------------------------------------------------------------------------

/// Per-task mine latency: one top-level item mined to completion
/// (sequential `mine_array` top loop and parallel `mine_one_item`).
pub static CORE_MINE_TASK_NANOS: LatencyHisto = LatencyHisto::new("core.mine_task_nanos");
/// Per-watermark emit latency: duration of a `sink.progress(..)` call
/// (includes checkpoint commit when a `CheckpointSink` is attached).
pub static CORE_EMIT_NANOS: LatencyHisto = LatencyHisto::new("core.emit_nanos");
/// Checkpoint commit latency: one atomic manifest save in `ckpt::save`.
pub static CORE_CKPT_COMMIT_NANOS: LatencyHisto = LatencyHisto::new("core.ckpt_commit_nanos");
/// Spill-rung projection latency: project + build + convert for one
/// partition (excludes the disk write).
pub static CORE_SPILL_PROJECT_NANOS: LatencyHisto = LatencyHisto::new("core.spill_project_nanos");
/// Spill-rung per-partition mine latency (includes the partition load).
pub static CORE_SPILL_MINE_NANOS: LatencyHisto = LatencyHisto::new("core.spill_mine_nanos");
/// Spill-partition serialize + atomic-write latency.
pub static DATA_SPILL_WRITE_NANOS: LatencyHisto = LatencyHisto::new("data.spill_write_nanos");
/// Spill-partition read + decode latency.
pub static DATA_SPILL_LOAD_NANOS: LatencyHisto = LatencyHisto::new("data.spill_load_nanos");
/// Double-buffered reader: consumer wait for the next filled buffer.
pub static DATA_BUFFER_WAIT_NANOS: LatencyHisto = LatencyHisto::new("data.buffer_wait_nanos");

/// Every histogram in the registry, sorted by name.
static ALL: &[&LatencyHisto] = &[
    &CORE_CKPT_COMMIT_NANOS,
    &CORE_EMIT_NANOS,
    &CORE_MINE_TASK_NANOS,
    &CORE_SPILL_MINE_NANOS,
    &CORE_SPILL_PROJECT_NANOS,
    &DATA_BUFFER_WAIT_NANOS,
    &DATA_SPILL_LOAD_NANOS,
    &DATA_SPILL_WRITE_NANOS,
];

/// Summaries of every non-empty registry histogram, sorted by name.
pub fn summaries() -> Vec<HistSummary> {
    ALL.iter().filter(|h| h.count() > 0).map(|h| h.summary()).collect()
}

/// Zero every registry histogram.
pub fn reset_all() {
    for h in ALL {
        h.reset();
    }
}

// ---------------------------------------------------------------------------
// Timing helpers
// ---------------------------------------------------------------------------

/// Capture a start time, or `None` when tracing is disabled (one relaxed
/// load; no clock read). Pair with [`record_since`].
#[inline]
pub fn maybe_now() -> Option<Instant> {
    if crate::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record the elapsed nanoseconds since a [`maybe_now`] capture. A `None`
/// start (tracing disabled at capture time) records nothing.
#[inline]
pub fn record_since(h: &LatencyHisto, start: Option<Instant>) {
    if let Some(t0) = start {
        let nanos = t0.elapsed().as_nanos();
        h.record(nanos.min(u64::MAX as u128) as u64);
    }
}

/// RAII variant: records into `h` when dropped. `None` when tracing is
/// disabled, so `let _t = hist::timer(&H);` is free in the off state.
#[inline]
pub fn timer(h: &'static LatencyHisto) -> Option<HistTimer> {
    maybe_now().map(|start| HistTimer { h, start })
}

/// Guard returned by [`timer`].
pub struct HistTimer {
    h: &'static LatencyHisto,
    start: Instant,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos();
        self.h.record(nanos.min(u64::MAX as u128) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_lo(i), v);
            assert_eq!(bucket_hi(i), v + 1);
            assert_eq!(bucket_mid(i), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        let probes = [
            15u64,
            16,
            17,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_lo(i) <= v, "lo {} > v {}", bucket_lo(i), v);
            assert!(
                v <= bucket_hi(i).saturating_sub(1).max(bucket_lo(i)) || bucket_hi(i) == u64::MAX
            );
            if i + 1 < NUM_BUCKETS {
                assert!(v < bucket_hi(i), "v {} >= hi {}", v, bucket_hi(i));
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_at_boundaries() {
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i} maps elsewhere");
            if lo > 0 {
                assert_eq!(bucket_index(lo - 1), i - 1, "pred of bucket {i} lo");
            }
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in SUB..NUM_BUCKETS - 1 {
            let lo = bucket_lo(i);
            let width = bucket_hi(i) - lo;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / SUB as f64 + 1e-12,
                "bucket {i}: width {width} lo {lo}"
            );
        }
    }

    #[test]
    fn percentiles_and_max() {
        let h = LatencyHisto::new("test");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.percentile(0.5);
        assert!((p50 as f64 - 500.0).abs() / 500.0 <= 1.0 / SUB as f64);
        assert_eq!(s.percentile(1.0), 1000);
        assert_eq!(s.summary().p999, s.percentile(0.999));
    }

    #[test]
    fn merge_adds() {
        let a = LatencyHisto::new("a");
        let b = LatencyHisto::new("b");
        a.record(5);
        a.record(500);
        b.record(70_000);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 5 + 500 + 70_000);
        assert_eq!(s.max, 70_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHisto::new("empty");
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p999, s.max), (0, 0, 0, 0));
    }
}
