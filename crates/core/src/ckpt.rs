//! Versioned checkpoint manifests for crash-safe resume.
//!
//! A checkpointed run periodically commits a tiny `cfp-ckpt/1` manifest
//! describing an exact watermark of its output stream: how many resume
//! units (top-level items for a monolithic run, partitions for an
//! out-of-core one) are fully emitted, and how many output bytes the
//! current run segment produced up to that watermark. Because CFP-growth
//! emits top-level items in a deterministic order (descending recoded
//! item id; spill partitions in queue order), truncating the output file
//! to the recorded byte count and re-running with the completed units
//! skipped yields a byte stream identical to an uninterrupted run.
//!
//! The manifest is hand-rolled JSON (the workspace builds without
//! network access, so no serde) written through
//! [`cfp_data::spill::write_atomic`] — tmp → fsync → rename — and
//! carries an FNV-1a checksum over its own compact serialisation, so a
//! torn or bit-flipped manifest is *rejected with a structured error*
//! ([`CfpError::Checkpoint`]), never trusted and never a panic. A
//! config fingerprint (input path, minimum support, and an FNV over the
//! support-ordered item counts) guards against resuming one dataset's
//! watermark into a different run.

use cfp_data::spill::write_atomic;
use cfp_data::{CfpError, ItemRecoder};
use cfp_trace::json::{parse, Json};
use std::path::{Path, PathBuf};

/// The manifest format tag; bump on any incompatible schema change.
pub const FORMAT: &str = "cfp-ckpt/1";

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "ckpt.json";

/// Where a run's manifest lives under its checkpoint directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// The resumable position recorded by a manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptProgress {
    /// Monolithic mining: `items_done` top-level items fully emitted
    /// (items `n-1, n-2, …, n-items_done` in recoded order).
    Mono {
        /// Completed top-level items.
        items_done: u64,
    },
    /// Out-of-core mining: `parts_done` spill partitions fully emitted;
    /// `remaining` holds the unmined `(lo, hi)` recoded item ranges in
    /// the exact order the spill rung will process them.
    Spill {
        /// Completed spill partitions.
        parts_done: u64,
        /// Unmined ranges, in processing order.
        remaining: Vec<(u32, u32)>,
    },
}

impl CkptProgress {
    /// The manifest spelling of this mode.
    pub fn mode(&self) -> &'static str {
        match self {
            CkptProgress::Mono { .. } => "mono",
            CkptProgress::Spill { .. } => "spill",
        }
    }

    /// Completed resume units, whatever the mode.
    pub fn done(&self) -> u64 {
        match self {
            CkptProgress::Mono { items_done } => *items_done,
            CkptProgress::Spill { parts_done, .. } => *parts_done,
        }
    }
}

/// One committed checkpoint: config fingerprint + output watermark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The input path of the checkpointed run, as given on its command
    /// line (fingerprint, compared verbatim on resume).
    pub input: String,
    /// The run's minimum support (fingerprint).
    pub min_support: u64,
    /// FNV-1a fingerprint over the support-ordered item counts — see
    /// [`counts_fingerprint`]. Catches a changed input file even when
    /// its path did not change.
    pub counts: String,
    /// Frequent items after recoding (informational; implied by
    /// `counts`).
    pub num_items: u64,
    /// The run's output mode spelling (`all`, `closed`, `maximal`,
    /// `topk:N`) — a fingerprint: condensed modes carry reconcile state
    /// that is not captured by the watermark, so a resume must mine the
    /// same mode it checkpointed under.
    pub output: String,
    /// The resumable position.
    pub progress: CkptProgress,
    /// Output bytes durably written at the watermark, *cumulative*
    /// across all resume segments appended to the same output file.
    /// Recovery truncates the output file to exactly this length before
    /// re-running with `--resume`.
    pub output_bytes: u64,
    /// Itemsets emitted at the watermark, cumulative across segments
    /// (informational).
    pub itemsets: u64,
}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a scan result: FNV-1a over the item count followed by
/// every support in recoded order and its original item id. Two runs
/// see the same fingerprint iff the frequent-item universe — and hence
/// the whole deterministic emission order — is identical.
pub fn counts_fingerprint(recoder: &ItemRecoder) -> String {
    let mut bytes = Vec::with_capacity(8 + recoder.num_items() * 12);
    bytes.extend_from_slice(&(recoder.num_items() as u64).to_le_bytes());
    for (new, &support) in recoder.supports().iter().enumerate() {
        bytes.extend_from_slice(&support.to_le_bytes());
        bytes.extend_from_slice(&recoder.original(new as u32).to_le_bytes());
    }
    format!("fnv1a:{:016x}", fnv1a64(&bytes))
}

fn ckpt_err(path: &Path, message: impl Into<String>) -> CfpError {
    CfpError::Checkpoint { path: path.display().to_string(), message: message.into() }
}

impl Manifest {
    /// The manifest as JSON, *without* the checksum member.
    fn body(&self) -> Json {
        let progress = match &self.progress {
            CkptProgress::Mono { items_done } => Json::Obj(vec![
                ("mode".into(), Json::str("mono")),
                ("items_done".into(), Json::u64(*items_done)),
            ]),
            CkptProgress::Spill { parts_done, remaining } => Json::Obj(vec![
                ("mode".into(), Json::str("spill")),
                ("parts_done".into(), Json::u64(*parts_done)),
                (
                    "remaining".into(),
                    Json::Arr(
                        remaining
                            .iter()
                            .map(|&(lo, hi)| {
                                Json::Arr(vec![Json::u64(lo as u64), Json::u64(hi as u64)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::Obj(vec![
            ("format".into(), Json::str(FORMAT)),
            (
                "config".into(),
                Json::Obj(vec![
                    ("input".into(), Json::str(&self.input)),
                    ("min_support".into(), Json::u64(self.min_support)),
                    ("counts".into(), Json::str(&self.counts)),
                    ("num_items".into(), Json::u64(self.num_items)),
                    ("output".into(), Json::str(&self.output)),
                ]),
            ),
            ("progress".into(), progress),
            ("output_bytes".into(), Json::u64(self.output_bytes)),
            ("itemsets".into(), Json::u64(self.itemsets)),
        ])
    }

    /// The manifest as checksummed JSON text, ready to write.
    pub fn to_json_text(&self) -> String {
        let body = self.body();
        let checksum = format!("fnv1a:{:016x}", fnv1a64(body.to_compact().as_bytes()));
        let Json::Obj(mut members) = body else { unreachable!("body is an object") };
        members.push(("checksum".into(), Json::Str(checksum)));
        Json::Obj(members).to_pretty()
    }

    fn from_json(doc: &Json, path: &Path) -> Result<Manifest, CfpError> {
        let err = |m: &str| ckpt_err(path, m);
        // Verify the checksum first: a manifest that fails it may lie
        // about anything else.
        let Json::Obj(members) = doc else {
            return Err(err("manifest root is not an object"));
        };
        let stored = doc
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing checksum member"))?;
        let body =
            Json::Obj(members.iter().filter(|(k, _)| k != "checksum").cloned().collect::<Vec<_>>());
        let computed = format!("fnv1a:{:016x}", fnv1a64(body.to_compact().as_bytes()));
        if stored != computed {
            return Err(err(&format!(
                "checksum mismatch: stored {stored}, computed {computed} (torn or corrupted \
                 manifest)"
            )));
        }
        let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
        if format != FORMAT {
            return Err(err(&format!("unsupported format '{format}' (expected '{FORMAT}')")));
        }
        let config = doc.get("config").ok_or_else(|| err("missing config member"))?;
        let input = config
            .get("input")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing config.input"))?
            .to_string();
        let min_support = config
            .get("min_support")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing config.min_support"))?;
        let counts = config
            .get("counts")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing config.counts"))?
            .to_string();
        let num_items = config
            .get("num_items")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing config.num_items"))?;
        // Manifests written before the output-mode fingerprint existed
        // could only have come from full-output runs.
        let output = config.get("output").and_then(Json::as_str).unwrap_or("all").to_string();
        let prog = doc.get("progress").ok_or_else(|| err("missing progress member"))?;
        let progress = match prog.get("mode").and_then(Json::as_str) {
            Some("mono") => CkptProgress::Mono {
                items_done: prog
                    .get("items_done")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err("missing progress.items_done"))?,
            },
            Some("spill") => {
                let parts_done = prog
                    .get("parts_done")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err("missing progress.parts_done"))?;
                let ranges = prog
                    .get("remaining")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("missing progress.remaining"))?;
                let mut remaining = Vec::with_capacity(ranges.len());
                for r in ranges {
                    let pair = r.as_arr().filter(|p| p.len() == 2);
                    let (lo, hi) = match pair {
                        Some(p) => (p[0].as_u64(), p[1].as_u64()),
                        None => (None, None),
                    };
                    match (lo, hi) {
                        (Some(lo), Some(hi)) if lo < hi && hi <= u32::MAX as u64 => {
                            remaining.push((lo as u32, hi as u32));
                        }
                        _ => return Err(err("malformed progress.remaining range")),
                    }
                }
                CkptProgress::Spill { parts_done, remaining }
            }
            _ => return Err(err("missing or unknown progress.mode")),
        };
        let output_bytes = doc
            .get("output_bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| err("missing output_bytes"))?;
        let itemsets =
            doc.get("itemsets").and_then(Json::as_u64).ok_or_else(|| err("missing itemsets"))?;
        Ok(Manifest {
            input,
            min_support,
            counts,
            num_items,
            output,
            progress,
            output_bytes,
            itemsets,
        })
    }

    /// Rejects a resume whose current run does not match the manifest's
    /// config fingerprint. `input` and `min_support` come from the
    /// command line; `counts` from [`counts_fingerprint`] over the fresh
    /// scan.
    pub fn ensure_matches(
        &self,
        dir: &Path,
        input: &str,
        min_support: u64,
        counts: &str,
        output: &str,
    ) -> Result<(), CfpError> {
        let path = manifest_path(dir);
        if self.input != input {
            return Err(ckpt_err(
                &path,
                format!("input mismatch: checkpointed '{}', resuming '{input}'", self.input),
            ));
        }
        if self.min_support != min_support {
            return Err(ckpt_err(
                &path,
                format!(
                    "min_support mismatch: checkpointed {}, resuming {min_support}",
                    self.min_support
                ),
            ));
        }
        if self.counts != counts {
            return Err(ckpt_err(
                &path,
                format!(
                    "item-count fingerprint mismatch: checkpointed {}, input now scans to \
                     {counts} (the input file changed)",
                    self.counts
                ),
            ));
        }
        if self.output != output {
            return Err(ckpt_err(
                &path,
                format!(
                    "output mismatch: checkpointed --output={}, resuming --output={output}",
                    self.output
                ),
            ));
        }
        Ok(())
    }
}

/// Commits `manifest` into `dir` crash-safely (tmp → fsync → rename via
/// [`write_atomic`]) and returns its byte size. The `core.ckpt.write`
/// failpoint injects a permanent write failure here.
pub fn save(dir: &Path, manifest: &Manifest) -> Result<u64, CfpError> {
    let _t = cfp_trace::hist::timer(&cfp_trace::hist::CORE_CKPT_COMMIT_NANOS);
    let path = manifest_path(dir);
    if cfp_fault::should_fail("core.ckpt.write") {
        return Err(ckpt_err(
            &path,
            "injected checkpoint write failure (failpoint core.ckpt.write)",
        ));
    }
    let text = manifest.to_json_text();
    let bytes = write_atomic(&path, |w| w.write_all(text.as_bytes()))
        .map_err(|e| ckpt_err(&path, e.to_string()))?;
    if cfp_trace::enabled() {
        cfp_trace::counters::CORE_CKPT_COMMITS.inc();
        cfp_trace::counters::CORE_CKPT_BYTES.add(bytes);
    }
    Ok(bytes)
}

/// Loads the manifest from `dir`. `Ok(None)` when no manifest exists
/// (a fresh run); a present-but-invalid manifest — torn, bit-flipped,
/// wrong format, missing members — is a structured
/// [`CfpError::Checkpoint`], never a panic and never silently ignored.
pub fn load(dir: &Path) -> Result<Option<Manifest>, CfpError> {
    let path = manifest_path(dir);
    let text = match std::fs::read(&path) {
        Ok(bytes) => {
            String::from_utf8(bytes).map_err(|_| ckpt_err(&path, "manifest is not valid UTF-8"))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ckpt_err(&path, e.to_string())),
    };
    let doc = parse(&text).map_err(|e| ckpt_err(&path, format!("JSON parse error: {e}")))?;
    Manifest::from_json(&doc, &path).map(Some)
}

/// Removes the manifest after a run completes, so a later run in the
/// same directory starts fresh. Removal failures are ignored: a stale
/// manifest is rejected by its config fingerprint at worst.
pub fn clear(dir: &Path) {
    let _ = std::fs::remove_file(manifest_path(dir));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::TransactionDb;

    fn ckpt_dir(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("cfp-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn sample() -> Manifest {
        Manifest {
            input: "data/kosarak.dat".into(),
            min_support: 42,
            counts: "fnv1a:00deadbeef001234".into(),
            num_items: 991,
            output: "all".into(),
            progress: CkptProgress::Spill {
                parts_done: 3,
                remaining: vec![(0, 7), (7, 19), (19, 991)],
            },
            output_bytes: 123_456_789,
            itemsets: 4_040,
        }
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = ckpt_dir("roundtrip");
        let m = sample();
        let bytes = save(&dir, &m).expect("save");
        assert!(bytes > 0);
        let back = load(&dir).expect("load").expect("present");
        assert_eq!(back, m);
        let mono = Manifest { progress: CkptProgress::Mono { items_done: 17 }, ..m };
        save(&dir, &mono).expect("overwrite");
        assert_eq!(load(&dir).unwrap().unwrap(), mono);
        clear(&dir);
        assert_eq!(load(&dir).unwrap(), None, "cleared manifest reads as fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_manifest_is_a_fresh_run_not_an_error() {
        let dir = ckpt_dir("absent");
        assert_eq!(load(&dir).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_is_rejected_with_a_structured_error() {
        let dir = ckpt_dir("trunc");
        save(&dir, &sample()).unwrap();
        let path = manifest_path(&dir);
        let full = std::fs::read(&path).unwrap();
        let m = sample();
        for len in 0..full.len() {
            std::fs::write(&path, &full[..len]).unwrap();
            // Never a panic and never a wrong watermark: either a
            // structured rejection, or — when only insignificant
            // trailing whitespace was cut — the exact manifest.
            match load(&dir) {
                Err(e) => assert_eq!(e.exit_code(), 9, "truncation to {len}: wrong error {e}"),
                Ok(back) => {
                    assert_eq!(back.as_ref(), Some(&m), "truncation to {len} changed the data");
                    assert!(
                        full[len..].iter().all(|b| b.is_ascii_whitespace()),
                        "truncation to {len} dropped significant bytes yet was accepted"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_flip_is_rejected_or_harmless() {
        let dir = ckpt_dir("flip");
        let m = sample();
        save(&dir, &m).unwrap();
        let path = manifest_path(&dir);
        let full = std::fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut flipped = full.clone();
            flipped[i] ^= 0xFF;
            std::fs::write(&path, &flipped).unwrap();
            // Never a panic; either a structured rejection or — only if
            // the flip was semantically invisible — the exact manifest.
            match load(&dir) {
                Err(e) => assert_eq!(e.exit_code(), 9, "flip at {i}: wrong error {e}"),
                Ok(back) => assert_eq!(back.as_ref(), Some(&m), "flip at {i} changed the data"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_mismatches_are_named() {
        let dir = ckpt_dir("config");
        let m = sample();
        assert!(m.ensure_matches(&dir, "data/kosarak.dat", 42, &m.counts, "all").is_ok());
        let e = m.ensure_matches(&dir, "other.dat", 42, &m.counts, "all").unwrap_err();
        assert!(e.to_string().contains("input mismatch"), "{e}");
        let e = m.ensure_matches(&dir, "data/kosarak.dat", 41, &m.counts, "all").unwrap_err();
        assert!(e.to_string().contains("min_support mismatch"), "{e}");
        let e = m.ensure_matches(&dir, "data/kosarak.dat", 42, "fnv1a:0", "all").unwrap_err();
        assert!(e.to_string().contains("fingerprint mismatch"), "{e}");
        assert_eq!(e.exit_code(), 9);
        let e = m.ensure_matches(&dir, "data/kosarak.dat", 42, &m.counts, "closed").unwrap_err();
        assert!(e.to_string().contains("output mismatch"), "{e}");
        assert_eq!(e.exit_code(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counts_fingerprint_tracks_the_frequent_universe() {
        let db1 = TransactionDb::from_rows(&[vec![1, 2, 3], vec![1, 2], vec![1]]);
        let db2 = TransactionDb::from_rows(&[vec![1, 2, 3], vec![1, 2], vec![2]]);
        let a = counts_fingerprint(&ItemRecoder::scan(&db1, 1));
        let b = counts_fingerprint(&ItemRecoder::scan(&db2, 1));
        let a2 = counts_fingerprint(&ItemRecoder::scan(&db1, 1));
        assert_eq!(a, a2, "fingerprint is deterministic");
        assert_ne!(a, b, "different supports give different fingerprints");
        assert!(a.starts_with("fnv1a:") && a.len() == 6 + 16);
    }
}
