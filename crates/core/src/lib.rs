//! **CFP-growth** — memory-efficient frequent-itemset mining.
//!
//! This crate is the top of the workspace reproducing Schlegel, Gemulla &
//! Lehner, *Memory-Efficient Frequent-Itemset Mining* (EDBT 2011): the
//! FP-growth algorithm run on two compressed data structures that cut its
//! memory consumption by roughly an order of magnitude:
//!
//! - the **CFP-tree** ([`cfp_tree::CfpTree`]) during the build phase — a
//!   prefix tree storing delta-encoded items and partial counts in a
//!   compressed ternary representation with embedded leaves and chain
//!   nodes, over a purpose-built arena memory manager;
//! - the **CFP-array** ([`cfp_array::CfpArray`]) during the mine phase —
//!   an item-clustered array of varint triples that needs neither
//!   nodelinks nor parent pointers.
//!
//! The mine phase recycles the same machinery: every conditional pattern
//! base becomes a conditional CFP-tree, is converted to a conditional
//! CFP-array, and is mined recursively (§3 of the paper).
//!
//! # Quick start
//!
//! ```
//! use cfp_core::{CfpGrowthMiner, CollectSink, Miner, TransactionDb};
//!
//! let db = TransactionDb::from_rows(&[
//!     vec![1, 2, 5],
//!     vec![2, 4],
//!     vec![1, 2, 4],
//!     vec![1, 2],
//! ]);
//! let mut sink = CollectSink::new();
//! let stats = CfpGrowthMiner::new().mine(&db, 2, &mut sink);
//! let itemsets = sink.into_sorted();
//! assert!(itemsets.contains(&(vec![1, 2], 3)));
//! assert_eq!(stats.itemsets, itemsets.len() as u64);
//! ```

#![warn(missing_docs)]

pub mod ckpt;
pub mod growth;
pub mod image;
pub mod io;
pub mod memstat;
pub mod parallel;
pub mod schedule;
pub mod spill;
pub mod supervisor;

pub use cfp_array::{convert, CfpArray};
pub use cfp_data::miner::{CollectSink, CountingSink, LengthHistogramSink, NullSink, TopKSink};
pub use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, Miner, OutputMode, TransactionDb};
pub use cfp_tree::CfpTree;
pub use ckpt::{CkptProgress, Manifest};
pub use growth::{build_tree, CfpGrowthMiner, MineOpts};
pub use image::MiningImage;
pub use io::mine_file;
pub use memstat::{collect_memstat, FpBaselineBytes, MemStatRun};
pub use parallel::ParallelCfpGrowthMiner;
pub use schedule::Schedule;
pub use spill::CondSpill;
pub use supervisor::{RecoveryPolicy, RecoveryReport, RungReport, Supervisor};
