//! The run supervisor: graceful degradation under memory pressure.
//!
//! [`Supervisor::mine`] wraps a mining run in an escalation ladder that
//! turns [`CfpError::MemoryExhausted`] (and watchdog timeouts) into
//! completed, *exact* runs wherever possible. The rungs, in order, each
//! attempted at most once per run:
//!
//! 1. **retry** — run again with the budget enforced by one shared
//!    [`BudgetPool`] and compact-on-pressure armed, so a denied
//!    allocation first reclaims the arena's trailing free chunks.
//! 2. **degrade** — downshift from parallel to sequential mining (one
//!    conditional tree live instead of `threads`), same pool and
//!    compaction.
//! 3. **partition** — split the database into `k` item-range projections
//!    ([`cfp_data::partition`]), mine each sequentially under the
//!    budget, and merge the per-range results into the exact global
//!    result. A range that still exhausts the budget is split in two and
//!    requeued; a single-item range that fails ends the run.
//! 4. **spill** (replacing rung 3 under [`RecoveryPolicy::Spill`]) —
//!    out-of-core partitioned mining: each projection's CFP-array is
//!    written to a crash-safe spill file and mined back one at a time
//!    through a zero-copy view, so the budget covers only one
//!    partition's transient structures at a time.
//!
//! Output is buffered per attempt and flushed to the caller's sink only
//! when an attempt succeeds, so the caller never sees a partial result
//! stream mixed into a complete one. Every rung emits a
//! [`Phase::Recover`] span and a [`RungReport`]; the CLI serialises the
//! collected [`RecoveryReport`] as the `degradation` section of the
//! `cfp-profile/2` run report.
//!
//! Exactness of the partition rung follows Grahne & Zhu's range
//! projection argument, spelled out in [`cfp_data::partition`]: every
//! frequent itemset has exactly one maximal item under the global
//! support-descending recode order, the projection for that item's range
//! preserves the itemset's full global support, and a
//! max-item filter keeps each itemset in exactly one range's output.

use crate::growth::{
    mine_loaded, ArrayCharge, CfpGrowthMiner, MineOpts, ModeCtx, SubsumeIndex, TopKState,
};
use crate::parallel::ParallelCfpGrowthMiner;
use crate::schedule::Schedule;
use crate::spill::{load_spill_array, write_spill_array, CondSpill};
use cfp_array::convert;
use cfp_data::miner::CollectSink;
use cfp_data::partition::{project, ranges_by_mass};
use cfp_data::spill::SpillDir;
use cfp_data::{
    CfpError, Item, ItemRecoder, ItemsetSink, MineStats, Miner, OutputMode, TransactionDb,
};
use cfp_memman::{BudgetPool, Component};
use cfp_trace::{span, Phase};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// How far the supervisor may escalate when a run fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryPolicy {
    /// No recovery: the first failure is final (classic behaviour).
    Off,
    /// Rung 1 only: compact-and-retry under a shared pool.
    Retry,
    /// Rungs 1–2: retry, then downshift to sequential mining.
    Degrade,
    /// Rungs 1–3: retry, degrade, then partitioned fallback mining.
    Partition,
    /// Rungs 1–2 then out-of-core: retry, degrade, then spill partition
    /// arrays to disk and mine them back one at a time through zero-copy
    /// views. The disk-backed sibling of [`RecoveryPolicy::Partition`]
    /// for datasets whose projections still crowd the budget in RAM.
    Spill,
}

impl RecoveryPolicy {
    /// The policy's CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Off => "off",
            RecoveryPolicy::Retry => "retry",
            RecoveryPolicy::Degrade => "degrade",
            RecoveryPolicy::Partition => "partition",
            RecoveryPolicy::Spill => "spill",
        }
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(RecoveryPolicy::Off),
            "retry" => Ok(RecoveryPolicy::Retry),
            "degrade" => Ok(RecoveryPolicy::Degrade),
            "partition" => Ok(RecoveryPolicy::Partition),
            "spill" => Ok(RecoveryPolicy::Spill),
            other => Err(format!(
                "unknown recovery policy '{other}' (off|retry|degrade|partition|spill)"
            )),
        }
    }
}

/// One rung's outcome within a recovery ladder.
#[derive(Clone, Debug)]
pub struct RungReport {
    /// Rung name: `"retry"`, `"degrade"`, `"partition"`, or `"spill"`.
    pub rung: &'static str,
    /// Whether this rung completed the run.
    pub succeeded: bool,
    /// Bytes reclaimed by arena compaction during the rung.
    pub reclaimed_bytes: u64,
    /// Number of partitions mined (partition rung only, else 0).
    pub partitions: u64,
    /// The rung's failure, when it failed.
    pub error: Option<String>,
}

/// What the supervisor did to finish (or fail) a run.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// The configured escalation policy.
    pub policy: String,
    /// The rungs attempted, in order. Empty for a healthy first attempt.
    pub rungs: Vec<RungReport>,
    /// Whether a rung (rather than the first attempt) produced the result.
    pub recovered: bool,
    /// Partitions in the final successful configuration (0 = monolithic).
    pub final_partitions: u64,
    /// Per-partition pool peaks of the partition rung, in mining order.
    pub partition_peaks: Vec<u64>,
}

/// Supervises a mining run with an escalation ladder (see the module
/// docs). Construct with the same knobs as [`ParallelCfpGrowthMiner`]
/// plus a [`RecoveryPolicy`].
#[derive(Clone, Debug)]
pub struct Supervisor {
    /// Worker threads for the first attempt and the retry rung.
    pub threads: usize,
    /// Enumerate single-path structures directly instead of recursing.
    pub single_path_opt: bool,
    /// Byte budget for the whole run; `None` disables the memory rungs'
    /// reason to exist but the ladder still handles worker failures.
    pub mem_budget: Option<u64>,
    /// The escalation policy.
    pub policy: RecoveryPolicy,
    /// Watchdog limit for parallel attempts (see
    /// [`ParallelCfpGrowthMiner::worker_timeout`]).
    pub worker_timeout: Option<Duration>,
    /// Mine-phase schedule for the first attempt and the retry rung
    /// (the degrade and partition rungs are sequential by design).
    pub schedule: Schedule,
    /// Parent directory for the spill rung's scratch files; the system
    /// temp directory when unset. A uniquely-named subdirectory is
    /// created per run and removed on every exit path.
    pub spill_dir: Option<PathBuf>,
    /// Cooperative cancellation, polled at every rung and partition
    /// boundary and threaded into each rung's miner. A fired token stops
    /// the ladder with [`CfpError::Interrupted`] — recovery rungs never
    /// escalate past a cancellation, because the interruption is not a
    /// failure the ladder could repair.
    pub cancel: Option<cfp_fault::CancelToken>,
    /// What every rung emits (all, closed, maximal, or top-k). The
    /// partition and spill rungs stay exact in condensed modes by mining
    /// ranges in descending item order and reconciling each partition's
    /// locally-condensed output against a global subsumption index; for
    /// top-k they mine everything and select the winners at the end.
    pub output: OutputMode,
}

impl Supervisor {
    /// A supervisor with the given policy and defaults for the rest.
    pub fn new(policy: RecoveryPolicy) -> Self {
        Supervisor {
            threads: 1,
            single_path_opt: true,
            mem_budget: None,
            policy,
            worker_timeout: None,
            schedule: Schedule::default(),
            spill_dir: None,
            cancel: None,
            output: OutputMode::default(),
        }
    }

    /// Whether the run's cancel token (if any) has fired.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Mines `db`, escalating through the recovery ladder on failure.
    ///
    /// Returns the mining result *and* the recovery report — the report
    /// survives failure so callers can still explain what was attempted.
    /// The caller's sink receives either the complete result of the
    /// winning attempt or nothing.
    pub fn mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> (Result<MineStats, CfpError>, RecoveryReport) {
        let mut report =
            RecoveryReport { policy: self.policy.name().to_string(), ..Default::default() };

        // First attempt: the classic run, output buffered.
        let mut buf = CollectSink::new();
        let first = ParallelCfpGrowthMiner {
            threads: self.threads,
            single_path_opt: self.single_path_opt,
            mem_budget: self.mem_budget,
            pool: None,
            worker_timeout: self.worker_timeout,
            compact_on_pressure: false,
            schedule: self.schedule,
            cancel: self.cancel.clone(),
            resume_skip: 0,
            output: self.output,
        }
        .try_mine(db, min_support, &mut buf);
        let mut last_err = match first {
            Ok(stats) => {
                flush(buf, sink);
                return (Ok(stats), report);
            }
            Err(e) => e,
        };
        if self.policy == RecoveryPolicy::Off {
            return (Err(last_err), report);
        }
        if self.cancelled() || matches!(last_err, CfpError::Interrupted) {
            return (Err(CfpError::Interrupted), report);
        }

        // Rung 1: retry with compaction armed and the budget enforced by
        // one shared pool across every arena of the run.
        {
            let _s = span(Phase::Recover);
            rung_started(cfp_trace::Rung::Retry);
            let pool = self.mem_budget.map(BudgetPool::new);
            let mut buf = CollectSink::new();
            let r = ParallelCfpGrowthMiner {
                threads: self.threads,
                single_path_opt: self.single_path_opt,
                mem_budget: None,
                pool: pool.clone(),
                worker_timeout: self.worker_timeout,
                compact_on_pressure: true,
                schedule: self.schedule,
                cancel: self.cancel.clone(),
                resume_skip: 0,
                output: self.output,
            }
            .try_mine(db, min_support, &mut buf);
            let reclaimed = pool.map(|p| p.compact_reclaimed()).unwrap_or(0);
            match r {
                Ok(stats) => {
                    report.rungs.push(RungReport {
                        rung: "retry",
                        succeeded: true,
                        reclaimed_bytes: reclaimed,
                        partitions: 0,
                        error: None,
                    });
                    report.recovered = true;
                    flush(buf, sink);
                    return (Ok(stats), report);
                }
                Err(e) => {
                    report.rungs.push(RungReport {
                        rung: "retry",
                        succeeded: false,
                        reclaimed_bytes: reclaimed,
                        partitions: 0,
                        error: Some(e.to_string()),
                    });
                    last_err = e;
                }
            }
        }
        if self.policy == RecoveryPolicy::Retry {
            return (Err(last_err), report);
        }
        if self.cancelled() || matches!(last_err, CfpError::Interrupted) {
            return (Err(CfpError::Interrupted), report);
        }

        // Rung 2: downshift to sequential mining — one conditional tree
        // live at a time instead of `threads`. Skipped when the run was
        // sequential already (it would repeat rung 1 exactly).
        if self.threads > 1 {
            let _s = span(Phase::Recover);
            rung_started(cfp_trace::Rung::Degrade);
            let pool = self.mem_budget.map(BudgetPool::new);
            let mut buf = CollectSink::new();
            let r = CfpGrowthMiner { single_path_opt: self.single_path_opt, mem_budget: None }
                .try_mine_with(
                    db,
                    min_support,
                    &mut buf,
                    &MineOpts {
                        pool: pool.clone(),
                        compact_on_pressure: true,
                        cancel: self.cancel.clone(),
                        output: self.output,
                        ..Default::default()
                    },
                );
            let reclaimed = pool.map(|p| p.compact_reclaimed()).unwrap_or(0);
            match r {
                Ok(stats) => {
                    report.rungs.push(RungReport {
                        rung: "degrade",
                        succeeded: true,
                        reclaimed_bytes: reclaimed,
                        partitions: 0,
                        error: None,
                    });
                    report.recovered = true;
                    flush(buf, sink);
                    return (Ok(stats), report);
                }
                Err(e) => {
                    report.rungs.push(RungReport {
                        rung: "degrade",
                        succeeded: false,
                        reclaimed_bytes: reclaimed,
                        partitions: 0,
                        error: Some(e.to_string()),
                    });
                    last_err = e;
                }
            }
        }
        if self.policy == RecoveryPolicy::Degrade {
            return (Err(last_err), report);
        }
        if self.cancelled() || matches!(last_err, CfpError::Interrupted) {
            return (Err(CfpError::Interrupted), report);
        }

        // Rung 3: partitioned fallback mining — in RAM for the
        // `partition` policy, through disk for `spill`.
        let _s = span(Phase::Recover);
        let (rung, r) = if self.policy == RecoveryPolicy::Spill {
            rung_started(cfp_trace::Rung::Spill);
            ("spill", self.spill_rung(db, min_support, &last_err, None, None))
        } else {
            rung_started(cfp_trace::Rung::Partition);
            ("partition", self.partition_rung(db, min_support, &last_err))
        };
        match r {
            Ok((stats, partitions, reclaimed, peaks, buf)) => {
                report.rungs.push(RungReport {
                    rung,
                    succeeded: true,
                    reclaimed_bytes: reclaimed,
                    partitions,
                    error: None,
                });
                report.recovered = true;
                report.final_partitions = partitions;
                report.partition_peaks = peaks;
                flush(buf, sink);
                (Ok(stats), report)
            }
            Err((e, partitions, reclaimed)) => {
                report.rungs.push(RungReport {
                    rung,
                    succeeded: false,
                    reclaimed_bytes: reclaimed,
                    partitions,
                    error: Some(e.to_string()),
                });
                (Err(e), report)
            }
        }
    }

    /// The partition rung: project, mine each range under the budget,
    /// filter by maximal item, and concatenate. Returns the merged
    /// stats, the number of partitions mined, compaction bytes, the
    /// per-partition pool peaks, and the buffered output.
    #[allow(clippy::type_complexity)]
    fn partition_rung(
        &self,
        db: &TransactionDb,
        min_support: u64,
        cause: &CfpError,
    ) -> Result<(MineStats, u64, u64, Vec<u64>, CollectSink), (CfpError, u64, u64)> {
        let recoder = ItemRecoder::scan(db, min_support);
        let n = recoder.num_items();
        if n == 0 {
            // Nothing frequent: the empty result is exact. (The original
            // failure was necessarily transient — e.g. injected.)
            return Ok((MineStats::default(), 0, 0, Vec::new(), CollectSink::new()));
        }
        // Initial partition count from the failure itself: aim for
        // projections of at most half the budget. For non-memory causes
        // start at 2.
        let k0 = match *cause {
            CfpError::MemoryExhausted { footprint, limit, .. } if limit > 0 => {
                (2 * footprint).div_ceil(limit).max(2) as usize
            }
            _ => 2,
        };
        let condensed = self.output.is_condensed();
        // Top-k needs the global view: mine every partition in full and
        // select the winners at the end. Condensed modes mine condensed
        // per partition and reconcile below.
        let proj_output = match self.output {
            OutputMode::TopK(_) => OutputMode::All,
            other => other,
        };
        let mut queue: VecDeque<(u32, u32)> = ranges_by_mass(&recoder, k0.min(n)).into();
        if condensed {
            // Descending item ranges reproduce the sequential top-item
            // order, so every cross-partition subsumer is buffered before
            // the candidates it subsumes (a superset's maximal item is ≥
            // the candidate's).
            queue.make_contiguous().reverse();
        }

        let mut buf = CollectSink::new();
        let mut stats = MineStats::default();
        let mut peaks: Vec<u64> = Vec::new();
        let mut reclaimed = 0u64;
        let mut mined = 0u64;
        let miner = CfpGrowthMiner { single_path_opt: self.single_path_opt, mem_budget: None };
        while let Some((lo, hi)) = queue.pop_front() {
            if self.cancelled() {
                return Err((CfpError::Interrupted, mined, reclaimed));
            }
            let proj = project(db, &recoder, lo, hi);
            let pool = self.mem_budget.map(BudgetPool::new);
            let opts = MineOpts {
                pool: pool.clone(),
                compact_on_pressure: true,
                cancel: self.cancel.clone(),
                output: proj_output,
                ..Default::default()
            };
            let mut fsink = RangeFilterSink { inner: &mut buf, recoder: &recoder, lo, hi };
            let r = miner.try_mine_with(&proj, min_support, &mut fsink, &opts);
            if let Some(p) = &pool {
                reclaimed += p.compact_reclaimed();
            }
            match r {
                Ok(s) => {
                    mined += 1;
                    peaks.push(pool.map(|p| p.peak()).unwrap_or(s.peak_bytes));
                    stats.itemsets += s.itemsets;
                    stats.scan_time += s.scan_time;
                    stats.build_time += s.build_time;
                    stats.convert_time += s.convert_time;
                    stats.mine_time += s.mine_time;
                    stats.tree_nodes += s.tree_nodes;
                    stats.peak_bytes = stats.peak_bytes.max(s.peak_bytes);
                    stats.avg_bytes = stats.avg_bytes.max(s.avg_bytes);
                }
                Err(CfpError::MemoryExhausted { .. }) if hi - lo > 1 => {
                    // Too big even projected: halve the range and requeue
                    // both parts. The failed attempt may already have
                    // buffered part of this range's output — retract it
                    // so the halves re-mine without duplication.
                    retract_range(&mut buf, &recoder, lo, hi);
                    let mid = lo + (hi - lo) / 2;
                    if condensed {
                        // Keep the queue strictly descending.
                        queue.push_front((lo, mid));
                        queue.push_front((mid, hi));
                    } else {
                        queue.push_front((mid, hi));
                        queue.push_front((lo, mid));
                    }
                }
                Err(e) => return Err((e, mined, reclaimed)),
            }
        }
        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_PARTITIONS.record(mined);
        }
        finalize_output(self.output, &mut buf);
        // itemsets counted by the projection miners include filtered-out
        // emissions; the buffered (kept) count is the real one.
        stats.itemsets = buf.itemsets.len() as u64;
        stats.worker_peaks = peaks.clone();
        Ok((stats, mined, reclaimed, peaks, buf))
    }

    /// Runs the out-of-core spill rung directly, without first climbing
    /// the in-memory rungs — for callers that already know the dataset
    /// must go through disk (and for differential testing of the rung in
    /// isolation). Output, exactness, and reporting match a
    /// [`mine`](Supervisor::mine) run whose ladder ends in the spill
    /// rung.
    pub fn mine_out_of_core(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> (Result<MineStats, CfpError>, RecoveryReport) {
        self.out_of_core_impl(db, min_support, sink, false, None)
    }

    /// The checkpointable spin on [`mine_out_of_core`]
    /// (Supervisor::mine_out_of_core): output is **streamed** to `sink`
    /// partition by partition instead of buffered for the whole run, and
    /// after each completed partition the sink receives a
    /// [`cfp_data::MineProgress::SpillParts`] notification carrying the
    /// global completed-partition count and the not-yet-mined `(lo, hi)`
    /// ranges in processing order — exactly the state a checkpoint
    /// manifest needs. A partition that fails and is halved never reaches
    /// the sink (its buffered output is discarded before the halves
    /// re-mine), so the stream always sits at a partition watermark.
    ///
    /// `resume` replays a previous run's final notification: `done`
    /// completed partitions (counted into subsequent notifications, never
    /// re-mined) and the surviving ranges to mine, in order. Because
    /// ranges are re-projected from the database, no spill files need to
    /// have survived the crash. Passing `None` starts a fresh run.
    pub fn mine_out_of_core_resumable(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
        resume: Option<(u64, Vec<(u32, u32)>)>,
    ) -> (Result<MineStats, CfpError>, RecoveryReport) {
        self.out_of_core_impl(db, min_support, sink, true, resume)
    }

    #[allow(clippy::type_complexity)]
    fn out_of_core_impl(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
        stream: bool,
        resume: Option<(u64, Vec<(u32, u32)>)>,
    ) -> (Result<MineStats, CfpError>, RecoveryReport) {
        // Resuming mid-run would start the reconcile index (or top-k
        // heap) without the already-emitted partitions' contributions;
        // the CLI restricts checkpointing of condensed/top-k runs to
        // `--recover=off` so this path is unreachable from it.
        assert!(
            resume.is_none() || self.output == OutputMode::All,
            "resumable out-of-core mining supports only OutputMode::All, not {}",
            self.output
        );
        let mut report = RecoveryReport {
            policy: RecoveryPolicy::Spill.name().to_string(),
            ..Default::default()
        };
        let _s = span(Phase::Recover);
        rung_started(cfp_trace::Rung::Spill);
        let cause = CfpError::MemoryExhausted {
            phase: "build",
            requested: 0,
            footprint: 0,
            limit: self.mem_budget.unwrap_or(0),
        };
        // Each branch consumes `sink` exactly once: streaming hands it to
        // the rung, buffering flushes into it afterwards.
        let r = if stream {
            self.spill_rung(db, min_support, &cause, Some(sink), resume)
        } else {
            self.spill_rung(db, min_support, &cause, None, resume).map(
                |(stats, partitions, reclaimed, peaks, buf)| {
                    flush(buf, sink);
                    (stats, partitions, reclaimed, peaks, CollectSink::new())
                },
            )
        };
        match r {
            Ok((stats, partitions, reclaimed, peaks, _buf)) => {
                report.rungs.push(RungReport {
                    rung: "spill",
                    succeeded: true,
                    reclaimed_bytes: reclaimed,
                    partitions,
                    error: None,
                });
                report.recovered = true;
                report.final_partitions = partitions;
                report.partition_peaks = peaks;
                (Ok(stats), report)
            }
            Err((e, partitions, reclaimed)) => {
                report.rungs.push(RungReport {
                    rung: "spill",
                    succeeded: false,
                    reclaimed_bytes: reclaimed,
                    partitions,
                    error: Some(e.to_string()),
                });
                (Err(e), report)
            }
        }
    }

    /// The spill rung: out-of-core partitioned mining.
    ///
    /// **Spill phase** — each queued item range is projected, its
    /// CFP-tree built and converted under a fresh budget pool, and the
    /// resulting array written to a crash-safe spill file
    /// ([`cfp_data::spill::write_atomic`]); tree and array are dropped
    /// before the next range, so at most one partition's structures are
    /// in RAM. A range whose *tree* already busts the budget is halved
    /// and requeued, exactly like the in-memory partition rung.
    ///
    /// **Mine phase** — each spill file is loaded back as one shared
    /// buffer, charged to the pool as external [`Component::Spill`]
    /// memory, and mined zero-copy through [`CfpArray::from_bytes`]
    /// (cfp_array::CfpArray::from_bytes) with a max-item range filter.
    /// Oversized conditional arrays round-trip through the same spill
    /// directory ([`CondSpill`]). A partition whose *conditional*
    /// structures bust the budget has its buffered output discarded, its
    /// file deleted, and its halves sent back through the spill phase.
    ///
    /// Exactness is the partition rung's Grahne & Zhu argument
    /// unchanged: the on-disk detour is a checksummed identity
    /// transformation of each partition's array. All spill state lives
    /// in one [`SpillDir`] removed on every exit path; a worker panic is
    /// contained to a structured [`CfpError::WorkerPanic`].
    #[allow(clippy::type_complexity)]
    fn spill_rung(
        &self,
        db: &TransactionDb,
        min_support: u64,
        cause: &CfpError,
        mut stream: Option<&mut dyn ItemsetSink>,
        resume: Option<(u64, Vec<(u32, u32)>)>,
    ) -> Result<(MineStats, u64, u64, Vec<u64>, CollectSink), (CfpError, u64, u64)> {
        let recoder = ItemRecoder::scan(db, min_support);
        let n = recoder.num_items();
        if n == 0 {
            return Ok((MineStats::default(), 0, 0, Vec::new(), CollectSink::new()));
        }
        let condensed = self.output.is_condensed();
        let proj_output = match self.output {
            OutputMode::TopK(_) => OutputMode::All,
            other => other,
        };
        // Cross-partition reconciliation state: condensed candidates are
        // checked (then inserted) in descending-range order, so every
        // possible subsumer is already indexed; top-k offers accumulate
        // into one global heap drained after the last partition.
        let mut recon = condensed.then(SubsumeIndex::default);
        let topk_state = match self.output {
            OutputMode::TopK(k) => Some(TopKState::new(k)),
            _ => None,
        };
        let k0 = match *cause {
            CfpError::MemoryExhausted { footprint, limit, .. } if limit > 0 => {
                (2 * footprint).div_ceil(limit).max(2) as usize
            }
            _ => 2,
        };
        let done0 = resume.as_ref().map(|(done, _)| *done).unwrap_or(0);
        let parent = self.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let dir = match SpillDir::create(&parent) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                return Err((
                    CfpError::Spill {
                        op: "write",
                        path: parent.display().to_string(),
                        message: e.to_string(),
                    },
                    0,
                    0,
                ))
            }
        };
        // Conditional arrays above a quarter of the budget follow the
        // partitions to disk; without a budget nothing is oversized.
        let cond_spill = self.mem_budget.map(|b| CondSpill::new(Arc::clone(&dir), (b / 4).max(1)));

        let mut ranges: VecDeque<(u32, u32)> = match resume {
            Some((_, remaining)) => remaining.into(),
            None => {
                let mut r: VecDeque<(u32, u32)> = ranges_by_mass(&recoder, k0.min(n)).into();
                if condensed {
                    // Highest ranges first: the sequential top-item order,
                    // which makes the per-partition reconcile exact.
                    r.make_contiguous().reverse();
                }
                r
            }
        };
        let mut entries: VecDeque<SpillEntry> = VecDeque::new();
        let mut buf = CollectSink::new();
        let mut stats = MineStats::default();
        let mut peaks: Vec<u64> = Vec::new();
        let mut reclaimed = 0u64;
        let mut mined = 0u64;
        let mut emitted = 0u64;
        let mut seq = 0u64;
        loop {
            // Spill phase: write every queued range's array to disk.
            while let Some((lo, hi)) = ranges.pop_front() {
                if self.cancelled() {
                    return Err((CfpError::Interrupted, mined, reclaimed));
                }
                let proj_t0 = cfp_trace::hist::maybe_now();
                let proj = project(db, &recoder, lo, hi);
                let pool = self.mem_budget.map(BudgetPool::new);
                let built = crate::growth::try_build_tree_with(
                    &proj,
                    min_support,
                    cfp_memman::ArenaOptions {
                        budget: None,
                        pool: pool.clone(),
                        compact_on_pressure: true,
                        component: Component::BuildTree,
                    },
                );
                if let Some(p) = &pool {
                    reclaimed += p.compact_reclaimed();
                }
                match built {
                    Ok((proj_recoder, tree)) => {
                        stats.tree_nodes += tree.num_nodes();
                        let array = convert(&tree);
                        drop(tree);
                        let globals: Vec<Item> = (0..proj_recoder.num_items() as u32)
                            .map(|i| proj_recoder.original(i))
                            .collect();
                        cfp_trace::hist::record_since(
                            &cfp_trace::hist::CORE_SPILL_PROJECT_NANOS,
                            proj_t0,
                        );
                        let name = format!("p{seq}.cfpa");
                        seq += 1;
                        let bytes = write_spill_array(&dir.file(&name), &array)
                            .map_err(|e| (e, mined, reclaimed))?;
                        entries.push_back(SpillEntry { name, lo, hi, globals, bytes });
                        if cfp_trace::enabled() {
                            // Live denominator for the progress
                            // heartbeat's `spill k/n` (grows when a
                            // too-big partition is halved and respilled).
                            cfp_trace::counters::CORE_SPILL_PARTITIONS.record(seq);
                        }
                    }
                    Err(CfpError::MemoryExhausted { .. }) if hi - lo > 1 => {
                        let mid = lo + (hi - lo) / 2;
                        if condensed {
                            ranges.push_front((lo, mid));
                            ranges.push_front((mid, hi));
                        } else {
                            ranges.push_front((mid, hi));
                            ranges.push_front((lo, mid));
                        }
                    }
                    Err(e) => return Err((e, mined, reclaimed)),
                }
            }
            if condensed {
                // A mine-phase halving re-enters the spill phase and
                // appends its halves behind pending entries; restore the
                // strict descending-range mining order the reconcile
                // relies on (already-mined partitions all sit above any
                // requeued half, so the global order stays descending).
                entries.make_contiguous().sort_by_key(|e| std::cmp::Reverse(e.lo));
            }
            // Mine phase: load each file back and mine it zero-copy.
            // Output goes through a per-partition buffer so a halved
            // failure simply drops its partial output, and a streaming
            // caller only ever sees whole partitions.
            while let Some(entry) = entries.pop_front() {
                if self.cancelled() {
                    return Err((CfpError::Interrupted, mined, reclaimed));
                }
                let SpillEntry { name, lo, hi, globals, bytes: _ } = &entry;
                let path = dir.file(name);
                let pool = self.mem_budget.map(BudgetPool::new);
                let opts = MineOpts {
                    pool: pool.clone(),
                    compact_on_pressure: true,
                    cond_spill: cond_spill.clone(),
                    cancel: self.cancel.clone(),
                    output: proj_output,
                    ..Default::default()
                };
                let mut part_buf = CollectSink::new();
                let mine_t0 = cfp_trace::hist::maybe_now();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    if cfp_fault::should_fail("core.worker") {
                        panic!("injected worker fault (failpoint core.worker)");
                    }
                    let (array, loaded_bytes) = load_spill_array(&path)?;
                    let _spill_charge =
                        ArrayCharge::with_component(pool.clone(), Component::Spill, loaded_bytes);
                    let mut fsink = RangeFilterSink {
                        inner: &mut part_buf,
                        recoder: &recoder,
                        lo: *lo,
                        hi: *hi,
                    };
                    // A fresh local mode per partition: condensed
                    // subsumption inside the partition is exact (the
                    // projection preserves global supports), and cross-
                    // partition false accepts are reconciled below.
                    let mut mode = ModeCtx::new(proj_output);
                    mine_loaded(
                        &array,
                        globals,
                        min_support,
                        self.single_path_opt,
                        &mut fsink,
                        &opts,
                        &mut mode,
                    )
                }));
                cfp_trace::hist::record_since(&cfp_trace::hist::CORE_SPILL_MINE_NANOS, mine_t0);
                if let Some(p) = &pool {
                    reclaimed += p.compact_reclaimed();
                }
                match r {
                    Ok(Ok(_)) => {
                        dir.remove(name);
                        mined += 1;
                        if cfp_trace::enabled() {
                            cfp_trace::counters::CORE_SPILL_PARTS_DONE.inc();
                        }
                        peaks.push(pool.map(|p| p.peak()).unwrap_or(0));
                        if let Some(index) = &mut recon {
                            // Drop candidates subsumed by an earlier
                            // (higher-range) partition; survivors join
                            // the index for the partitions below.
                            let by_support = self.output == OutputMode::Closed;
                            part_buf.itemsets.retain(|(set, support)| {
                                let want = by_support.then_some(*support);
                                if index.subsumes(set, want) {
                                    return false;
                                }
                                index.insert(set, *support);
                                true
                            });
                        }
                        if let Some(state) = &topk_state {
                            // Winners drain once the global set is final.
                            for (set, support) in &part_buf.itemsets {
                                state.offer(set, *support);
                            }
                            part_buf.itemsets.clear();
                        }
                        emitted += part_buf.itemsets.len() as u64;
                        match &mut stream {
                            Some(sink) => {
                                for (itemset, support) in &part_buf.itemsets {
                                    sink.emit(itemset, *support);
                                }
                                let remaining: Vec<(u32, u32)> = entries
                                    .iter()
                                    .map(|e| (e.lo, e.hi))
                                    .chain(ranges.iter().copied())
                                    .collect();
                                let emit_t0 = cfp_trace::hist::maybe_now();
                                let sent = sink.progress(cfp_data::MineProgress::SpillParts {
                                    done: done0 + mined,
                                    remaining: &remaining,
                                });
                                cfp_trace::hist::record_since(
                                    &cfp_trace::hist::CORE_EMIT_NANOS,
                                    emit_t0,
                                );
                                if let Err(e) = sent {
                                    return Err((e, mined, reclaimed));
                                }
                            }
                            None => buf.itemsets.append(&mut part_buf.itemsets),
                        }
                    }
                    Ok(Err(CfpError::MemoryExhausted { .. })) if hi - lo > 1 => {
                        // Conditional structures still too big: drop the
                        // partial output with its buffer, drop the file,
                        // and send both halves back through the spill
                        // phase.
                        dir.remove(name);
                        let mid = lo + (hi - lo) / 2;
                        ranges.push_back((*lo, mid));
                        ranges.push_back((mid, *hi));
                    }
                    Ok(Err(e)) => return Err((e, mined, reclaimed)),
                    Err(payload) => {
                        if cfp_trace::enabled() {
                            cfp_trace::counters::CORE_WORKER_PANICS.inc();
                        }
                        return Err((
                            CfpError::WorkerPanic {
                                worker: 0,
                                message: crate::parallel::panic_message(&*payload),
                            },
                            mined,
                            reclaimed,
                        ));
                    }
                }
            }
            if ranges.is_empty() {
                break;
            }
        }
        if let Some(state) = &topk_state {
            let winners = state.drain_sorted();
            emitted += winners.len() as u64;
            match &mut stream {
                Some(sink) => {
                    for (set, support) in &winners {
                        sink.emit(set, *support);
                    }
                }
                None => buf.itemsets.extend(winners),
            }
        }
        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_SPILL_PARTITIONS.record(mined);
        }
        stats.itemsets = emitted;
        stats.peak_bytes = peaks.iter().copied().max().unwrap_or(0);
        stats.worker_peaks = peaks.clone();
        Ok((stats, mined, reclaimed, peaks, buf))
    }
}

/// One partition's spill file, between the spill and mine phases.
struct SpillEntry {
    /// File name inside the run's [`SpillDir`].
    name: String,
    /// Global recoded item range `[lo, hi)` this partition covers.
    lo: u32,
    /// Exclusive upper bound of the range.
    hi: u32,
    /// The projection's local-id → original-item map, captured at build
    /// time (the database is not consulted again during the mine phase).
    globals: Vec<Item>,
    /// On-disk byte size (recorded for reporting; the mine phase charges
    /// the actual loaded size).
    #[allow(dead_code)]
    bytes: u64,
}

fn rung_started(rung: cfp_trace::Rung) {
    if cfp_trace::enabled() {
        cfp_trace::counters::CORE_RECOVERY_RUNGS.inc();
        if cfp_trace::events::capturing() {
            cfp_trace::events::record(cfp_trace::EventKind::RecoveryRung(rung));
        }
    }
}

fn flush(buf: CollectSink, sink: &mut dyn ItemsetSink) {
    for (itemset, support) in &buf.itemsets {
        sink.emit(itemset, *support);
    }
}

/// Post-processes a partitioned rung's buffered output for the run's
/// output mode. Condensed modes replay the buffer — accumulated in
/// descending range order — against one global subsumption index,
/// dropping candidates whose subsumer lives in an earlier (higher)
/// partition; same-partition subsumption was already handled by that
/// partition's local index. Top-k replaces the buffer with the k
/// best-supported itemsets under the deterministic (support desc, set
/// lex asc) order.
fn finalize_output(output: OutputMode, buf: &mut CollectSink) {
    match output {
        OutputMode::All => {}
        OutputMode::Closed | OutputMode::Maximal => {
            let closed = output == OutputMode::Closed;
            let mut index = SubsumeIndex::default();
            buf.itemsets.retain(|(set, support)| {
                let want = if closed { Some(*support) } else { None };
                if index.subsumes(set, want) {
                    return false;
                }
                index.insert(set, *support);
                true
            });
        }
        OutputMode::TopK(k) => {
            let state = TopKState::new(k);
            for (set, support) in &buf.itemsets {
                state.offer(set, *support);
            }
            buf.itemsets = state.drain_sorted();
        }
    }
}

/// Drops buffered itemsets whose maximal recoded item lies in `[lo, hi)`
/// — used to undo the partial output of a failed partition attempt
/// before the halved ranges re-mine it.
fn retract_range(buf: &mut CollectSink, recoder: &ItemRecoder, lo: u32, hi: u32) {
    buf.itemsets.retain(|(itemset, _)| {
        let max = itemset.iter().filter_map(|&it| recoder.recode(it)).max();
        !matches!(max, Some(m) if lo <= m && m < hi)
    });
}

/// Forwards only itemsets whose *maximal* global-recoded item falls in
/// `[lo, hi)` — the disjointness filter of the partition rung.
struct RangeFilterSink<'a> {
    inner: &'a mut CollectSink,
    recoder: &'a ItemRecoder,
    lo: u32,
    hi: u32,
}

impl ItemsetSink for RangeFilterSink<'_> {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        let max = itemset.iter().filter_map(|&it| self.recoder.recode(it)).max();
        if let Some(m) = max {
            if self.lo <= m && m < self.hi {
                self.inner.emit(itemset, support);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::CollectSink;

    fn textbook() -> TransactionDb {
        TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ])
    }

    fn reference(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        CfpGrowthMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn healthy_run_reports_no_rungs() {
        let db = textbook();
        let sup = Supervisor::new(RecoveryPolicy::Partition);
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, 2, &mut sink);
        r.expect("healthy run");
        assert!(report.rungs.is_empty());
        assert!(!report.recovered);
        assert_eq!(sink.into_sorted(), reference(&db, 2));
    }

    #[test]
    fn budget_too_small_for_monolithic_tree_recovers_via_partitioning() {
        let db = textbook();
        // Find the monolithic tree's charge, then budget below it: the
        // first attempt, the retry, and the degrade rung all fail in the
        // build phase; partitioned projections fit.
        let (_, tree) = crate::growth::try_build_tree(&db, 2, None).unwrap();
        let budget = tree.arena_footprint() - 10;
        drop(tree);

        let sup = Supervisor {
            threads: 2,
            mem_budget: Some(budget),
            ..Supervisor::new(RecoveryPolicy::Partition)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, 2, &mut sink);
        let stats = r.expect("partitioning must recover the run");
        assert!(report.recovered);
        assert_eq!(
            report.rungs.iter().map(|r| r.rung).collect::<Vec<_>>(),
            vec!["retry", "degrade", "partition"],
            "each rung attempted exactly once, in order"
        );
        assert!(report.final_partitions >= 2);
        for (i, peak) in report.partition_peaks.iter().enumerate() {
            assert!(peak <= &budget, "partition {i} peak {peak} over budget {budget}");
        }
        let got = sink.into_sorted();
        assert_eq!(got, reference(&db, 2), "partitioned result must be exact");
        assert_eq!(stats.itemsets, got.len() as u64);
    }

    #[test]
    fn policy_off_returns_the_original_failure_untouched() {
        let db = textbook();
        let sup = Supervisor { mem_budget: Some(16), ..Supervisor::new(RecoveryPolicy::Off) };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, 2, &mut sink);
        let err = r.expect_err("16 bytes cannot hold the tree");
        assert_eq!(err.exit_code(), 4);
        assert!(report.rungs.is_empty());
        assert!(sink.into_sorted().is_empty(), "no partial output on failure");
    }

    #[test]
    fn retry_policy_stops_after_one_rung() {
        let db = textbook();
        let sup = Supervisor { mem_budget: Some(16), ..Supervisor::new(RecoveryPolicy::Retry) };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, 2, &mut sink);
        assert!(r.is_err(), "16 bytes stays impossible after compaction");
        assert_eq!(report.rungs.len(), 1);
        assert_eq!(report.rungs[0].rung, "retry");
        assert!(!report.rungs[0].succeeded);
    }

    #[test]
    fn partitioned_equivalence_on_a_block_structured_db() {
        // Three nearly-disjoint item blocks: projections are about a
        // third of the monolithic tree, so a budget between the two
        // sizes forces exactly the partition rung to succeed.
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut db = TransactionDb::new();
        for block in 0u32..3 {
            for _ in 0..60 {
                let t: Vec<Item> =
                    (0..8).filter(|_| rng.gen_bool(0.6)).map(|i| block * 100 + i).collect();
                db.push(&t);
            }
        }
        let minsup = 3;
        let (_, tree) = crate::growth::try_build_tree(&db, minsup, None).unwrap();
        let mono = tree.arena_footprint();
        drop(tree);

        let budget = mono * 2 / 3;
        let sup = Supervisor {
            threads: 2,
            mem_budget: Some(budget),
            ..Supervisor::new(RecoveryPolicy::Partition)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, minsup, &mut sink);
        r.expect("block-structured db must partition cleanly");
        assert!(report.recovered);
        assert_eq!(report.rungs.last().unwrap().rung, "partition");
        for peak in &report.partition_peaks {
            assert!(peak <= &budget, "peak {peak} over budget {budget}");
        }
        assert_eq!(sink.into_sorted(), reference(&db, minsup));
    }

    fn spill_parent(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("cfp-sup-spill-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn assert_clean(parent: &std::path::Path) {
        let leftovers = std::fs::read_dir(parent).map(|it| it.count()).unwrap_or(0);
        assert_eq!(leftovers, 0, "no stray spill state may survive the run");
        let _ = std::fs::remove_dir_all(parent);
    }

    #[test]
    fn spill_policy_recovers_out_of_core_on_a_block_structured_db() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut db = TransactionDb::new();
        for block in 0u32..3 {
            for _ in 0..60 {
                let t: Vec<Item> =
                    (0..8).filter(|_| rng.gen_bool(0.6)).map(|i| block * 100 + i).collect();
                db.push(&t);
            }
        }
        let minsup = 3;
        let (_, tree) = crate::growth::try_build_tree(&db, minsup, None).unwrap();
        let mono = tree.arena_footprint();
        drop(tree);

        let parent = spill_parent("ladder");
        let sup = Supervisor {
            threads: 2,
            mem_budget: Some(mono * 2 / 3),
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, minsup, &mut sink);
        r.expect("the spill rung must recover the run");
        assert!(report.recovered);
        assert_eq!(
            report.rungs.iter().map(|r| r.rung).collect::<Vec<_>>(),
            vec!["retry", "degrade", "spill"],
            "the spill policy replaces the partition rung"
        );
        assert!(report.final_partitions >= 2);
        assert_eq!(sink.into_sorted(), reference(&db, minsup), "spilled result must be exact");
        assert_clean(&parent);
    }

    #[test]
    fn mine_out_of_core_matches_the_reference_on_the_textbook_db() {
        let db = textbook();
        let parent = spill_parent("direct");
        let sup = Supervisor {
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine_out_of_core(&db, 2, &mut sink);
        let stats = r.expect("out-of-core run");
        assert!(report.recovered);
        assert_eq!(report.rungs.len(), 1);
        assert_eq!(report.rungs[0].rung, "spill");
        assert!(report.final_partitions >= 2, "the rung must actually partition");
        let got = sink.into_sorted();
        assert_eq!(got, reference(&db, 2));
        assert_eq!(stats.itemsets, got.len() as u64);
        assert_clean(&parent);
    }

    #[test]
    fn mine_out_of_core_stays_under_a_sub_monolithic_budget() {
        let db = textbook();
        // Budget below the monolithic tree but above a single projection:
        // ranges that overrun it are halved and respilled until they fit.
        let (_, tree) = crate::growth::try_build_tree(&db, 2, None).unwrap();
        let budget = tree.arena_footprint() - 10;
        drop(tree);

        let parent = spill_parent("tiny");
        let sup = Supervisor {
            mem_budget: Some(budget),
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine_out_of_core(&db, 2, &mut sink);
        r.expect("halving must make every partition fit");
        for (i, peak) in report.partition_peaks.iter().enumerate() {
            assert!(peak <= &budget, "partition {i} peak {peak} over budget {budget}");
        }
        assert_eq!(sink.into_sorted(), reference(&db, 2));
        assert_clean(&parent);
    }

    #[test]
    fn mine_out_of_core_on_an_empty_db_is_exactly_empty() {
        let parent = spill_parent("empty");
        let sup = Supervisor {
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine_out_of_core(&TransactionDb::new(), 1, &mut sink);
        let stats = r.expect("empty run");
        assert_eq!(stats.itemsets, 0);
        assert_eq!(report.final_partitions, 0);
        assert!(sink.into_sorted().is_empty());
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn spill_policy_name_round_trips() {
        let p: RecoveryPolicy = "spill".parse().unwrap();
        assert_eq!(p, RecoveryPolicy::Spill);
        assert_eq!(p.name(), "spill");
        let err = "disk".parse::<RecoveryPolicy>().unwrap_err();
        assert!(err.contains("spill"), "the error must list the new policy: {err}");
    }

    fn block_db() -> TransactionDb {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut db = TransactionDb::new();
        for block in 0u32..3 {
            for _ in 0..60 {
                let t: Vec<Item> =
                    (0..8).filter(|_| rng.gen_bool(0.6)).map(|i| block * 100 + i).collect();
                db.push(&t);
            }
        }
        db
    }

    /// One recorded `SpillParts` notification: done, remaining ranges,
    /// itemsets emitted so far.
    type Mark = (u64, Vec<(u32, u32)>, usize);

    /// Streams into a collector while recording every `SpillParts`
    /// notification.
    struct MarkingSink {
        inner: CollectSink,
        marks: Vec<Mark>,
        cancel_after: Option<(u64, cfp_fault::CancelToken)>,
    }

    impl ItemsetSink for MarkingSink {
        fn emit(&mut self, itemset: &[Item], support: u64) {
            self.inner.emit(itemset, support);
        }

        fn progress(&mut self, p: cfp_data::MineProgress<'_>) -> Result<(), CfpError> {
            if let cfp_data::MineProgress::SpillParts { done, remaining } = p {
                self.marks.push((done, remaining.to_vec(), self.inner.itemsets.len()));
                if let Some((after, token)) = &self.cancel_after {
                    if done >= *after {
                        token.cancel();
                    }
                }
            }
            Ok(())
        }
    }

    #[test]
    fn a_fired_token_stops_the_ladder_without_escalation() {
        let db = textbook();
        let token = cfp_fault::CancelToken::new();
        token.cancel();
        let sup = Supervisor {
            mem_budget: Some(16),
            cancel: Some(token),
            ..Supervisor::new(RecoveryPolicy::Partition)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, 2, &mut sink);
        let err = r.expect_err("a cancelled run cannot complete");
        assert_eq!(err.exit_code(), 8, "interruption must win over recovery: {err}");
        assert!(report.rungs.is_empty(), "interruption must not climb the ladder");
        assert!(sink.into_sorted().is_empty());
    }

    #[test]
    fn streaming_spill_run_matches_the_buffered_one_mark_by_mark() {
        let db = block_db();
        let parent = spill_parent("stream");
        let sup = Supervisor {
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut sink =
            MarkingSink { inner: CollectSink::new(), marks: Vec::new(), cancel_after: None };
        let (r, report) = sup.mine_out_of_core_resumable(&db, 3, &mut sink, None);
        let stats = r.expect("streaming run");
        assert!(report.final_partitions >= 2);
        assert_eq!(stats.itemsets, sink.inner.itemsets.len() as u64);
        assert_eq!(
            sink.marks.len() as u64,
            report.final_partitions,
            "one notification per completed partition"
        );
        let last = sink.marks.last().unwrap();
        assert_eq!(last.0, report.final_partitions);
        assert!(last.1.is_empty(), "the final notification has nothing remaining");
        assert_eq!(last.2, sink.inner.itemsets.len(), "the final mark covers all output");
        assert_eq!(sink.inner.into_sorted(), reference(&db, 3));
        assert_clean(&parent);
    }

    #[test]
    fn resume_from_every_spill_mark_completes_the_exact_stream() {
        let db = block_db();
        let parent = spill_parent("resume");
        let sup = Supervisor {
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut full =
            MarkingSink { inner: CollectSink::new(), marks: Vec::new(), cancel_after: None };
        sup.mine_out_of_core_resumable(&db, 3, &mut full, None).0.expect("full run");
        assert!(full.marks.len() >= 2, "need at least two partitions to test resume");
        for (done, remaining, prefix_len) in &full.marks {
            let mut resumed =
                MarkingSink { inner: CollectSink::new(), marks: Vec::new(), cancel_after: None };
            sup.mine_out_of_core_resumable(&db, 3, &mut resumed, Some((*done, remaining.clone())))
                .0
                .expect("resumed run");
            let mut joined = full.inner.itemsets[..*prefix_len].to_vec();
            joined.extend(resumed.inner.itemsets.iter().cloned());
            assert_eq!(
                joined, full.inner.itemsets,
                "prefix at mark {done} + resumed tail must equal the full stream"
            );
            if let Some(last) = resumed.marks.last() {
                assert_eq!(last.0 as usize, full.marks.len(), "done counts are global");
            }
        }
        assert_clean(&parent);
    }

    #[test]
    fn cancelled_spill_run_stops_at_a_partition_watermark_and_resumes() {
        let db = block_db();
        let parent = spill_parent("cancel");
        let token = cfp_fault::CancelToken::new();
        let sup = Supervisor {
            spill_dir: Some(parent.clone()),
            cancel: Some(token.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut first = MarkingSink {
            inner: CollectSink::new(),
            marks: Vec::new(),
            cancel_after: Some((1, token)),
        };
        let (r, _) = sup.mine_out_of_core_resumable(&db, 3, &mut first, None);
        let err = r.expect_err("the token fires after the first partition");
        assert_eq!(err.exit_code(), 8, "unexpected failure: {err}");
        let (done, remaining, prefix_len) = first.marks.last().unwrap().clone();
        assert_eq!(prefix_len, first.inner.itemsets.len(), "output stops at the watermark");
        assert!(!remaining.is_empty(), "work must remain after the interruption");

        let sup = Supervisor {
            spill_dir: Some(parent.clone()),
            ..Supervisor::new(RecoveryPolicy::Spill)
        };
        let mut rest =
            MarkingSink { inner: CollectSink::new(), marks: Vec::new(), cancel_after: None };
        sup.mine_out_of_core_resumable(&db, 3, &mut rest, Some((done, remaining)))
            .0
            .expect("resume after interruption");
        let mut joined = first.inner.itemsets;
        joined.extend(rest.inner.itemsets);
        joined.sort();
        assert_eq!(joined, reference(&db, 3), "interrupt + resume must lose nothing");
        assert_clean(&parent);
    }

    #[test]
    fn single_item_range_failure_is_final() {
        let db = textbook();
        let sup = Supervisor {
            mem_budget: Some(5), // below even a root slot's charge
            ..Supervisor::new(RecoveryPolicy::Partition)
        };
        let mut sink = CollectSink::new();
        let (r, report) = sup.mine(&db, 2, &mut sink);
        let err = r.expect_err("5 bytes cannot hold any projection");
        assert_eq!(err.exit_code(), 4);
        assert!(!report.recovered);
        assert!(sink.into_sorted().is_empty());
    }
}
