//! Mine-phase scheduling for the parallel miner.
//!
//! The mine phase decomposes into one independent task per first-level
//! item, but task costs are wildly skewed: a few high-support items own
//! most of the CFP-array and dominate the conditional recursion, exactly
//! the imbalance FIMI datasets exhibit. Static round-robin dealing fixes
//! each worker's item set up front, so whichever worker drew the heavy
//! items finishes last while the rest idle.
//!
//! [`TaskQueue`] replaces the static deal with dynamic claiming: items are
//! sorted heaviest-first by an O(1) cost estimate (the encoded byte length
//! of each item's subarray, straight from [`cfp_array::CfpArray::starts`])
//! and workers pull from a shared cursor. Heavy items are claimed one at a
//! time — the longest-processing-time-first greedy rule, which keeps the
//! completion-time spread within one task of optimal — while the cheap
//! tail is claimed in chunks so the cursor is not hammered once per
//! trivial item.

use cfp_array::CfpArray;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How first-level items are distributed to mine-phase workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Deal items round-robin up front (the pre-scheduler behaviour).
    /// Workers stream result batches, so output order is
    /// nondeterministic.
    Static,
    /// Workers claim cost-sorted items from a shared queue and recycle
    /// one arena across conditional trees. Results are buffered per item
    /// and emitted in descending item order — byte-for-byte identical to
    /// sequential mining.
    #[default]
    Dynamic,
}

impl Schedule {
    /// The flag spelling of this schedule.
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Static => "static",
            Schedule::Dynamic => "dynamic",
        }
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(Schedule::Static),
            "dynamic" => Ok(Schedule::Dynamic),
            other => Err(format!("unknown schedule '{other}' (expected static|dynamic)")),
        }
    }
}

/// Cheap items are claimed in runs of this many to amortise the cursor
/// CAS; heavy items always go one at a time.
const CHUNK: usize = 8;

/// A shared, lock-free queue of first-level item tasks, sorted
/// heaviest-first.
///
/// The queue is a sorted vector plus an atomic cursor: claiming is a
/// compare-and-swap advancing the cursor by one (heavy task) or up to
/// [`CHUNK`] (cheap tail). Nothing is ever pushed back, so ABA problems
/// cannot arise and no locks are needed.
pub(crate) struct TaskQueue {
    /// First-level items, heaviest first (ties broken by descending item
    /// id so the order is deterministic).
    order: Vec<u32>,
    /// Estimated cost of `order[i]`: the item's encoded subarray bytes.
    costs: Vec<u64>,
    /// Next unclaimed position in `order`.
    cursor: AtomicUsize,
    /// Costs strictly above this claim singly; the rest claim chunked.
    heavy_threshold: u64,
}

impl TaskQueue {
    /// Builds the queue for every first-level item of `array`.
    #[cfg(test)]
    pub fn new(array: &CfpArray) -> Self {
        Self::with_limit(array, array.num_items() as u32)
    }

    /// Builds the queue for items `0 .. max_item` only — the resume
    /// path's constructor: items `max_item .. n` were fully emitted by a
    /// previous run (mining walks items in descending order) and must
    /// not be re-claimed.
    pub fn with_limit(array: &CfpArray, max_item: u32) -> Self {
        let n = (array.num_items() as u32).min(max_item);
        let mut order: Vec<u32> = (0..n).collect();
        // Heaviest first; descending item id on ties keeps the order (and
        // therefore chunk boundaries) deterministic across runs.
        order.sort_by_key(|&item| {
            (std::cmp::Reverse(array.subarray_bytes(item)), std::cmp::Reverse(item))
        });
        let costs: Vec<u64> = order.iter().map(|&item| array.subarray_bytes(item)).collect();
        let total: u64 = costs.iter().sum();
        let heavy_threshold = if costs.is_empty() { 0 } else { total / costs.len() as u64 };
        TaskQueue { order, costs, cursor: AtomicUsize::new(0), heavy_threshold }
    }

    /// Number of item tasks in the queue.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// The item at queue position `slot`.
    pub fn item(&self, slot: usize) -> u32 {
        self.order[slot]
    }

    /// The estimated cost of the task at queue position `slot`.
    pub fn cost(&self, slot: usize) -> u64 {
        self.costs[slot]
    }

    /// Claims the next run of tasks: returns the half-open slot range
    /// `[start, start + len)`, or `None` when the queue is drained.
    ///
    /// A task costing strictly more than the mean claims alone, so a
    /// worker stuck on it cannot also hold cheap items hostage; once the
    /// cursor reaches the cheap tail, claims widen to [`CHUNK`].
    pub fn claim(&self) -> Option<(usize, usize)> {
        loop {
            let start = self.cursor.load(Ordering::Relaxed);
            if start >= self.order.len() {
                return None;
            }
            let want = if self.costs[start] > self.heavy_threshold {
                1
            } else {
                CHUNK.min(self.order.len() - start)
            };
            if self
                .cursor
                .compare_exchange_weak(start, start + want, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some((start, want));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::TransactionDb;

    fn queue_for(rows: &[Vec<u32>], minsup: u64) -> TaskQueue {
        let (_, tree) =
            crate::growth::try_build_tree(&TransactionDb::from_rows(rows), minsup, None)
                .expect("build");
        TaskQueue::new(&cfp_array::convert(&tree))
    }

    #[test]
    fn schedule_parses_and_round_trips() {
        assert_eq!("static".parse::<Schedule>().unwrap(), Schedule::Static);
        assert_eq!("dynamic".parse::<Schedule>().unwrap(), Schedule::Dynamic);
        assert!("fifo".parse::<Schedule>().is_err());
        assert_eq!(Schedule::default(), Schedule::Dynamic);
        for s in [Schedule::Static, Schedule::Dynamic] {
            assert_eq!(s.name().parse::<Schedule>().unwrap(), s);
        }
    }

    #[test]
    fn queue_is_sorted_heaviest_first_and_covers_every_item() {
        let q = queue_for(
            &[vec![1, 2, 3, 4], vec![1, 2, 3], vec![1, 2], vec![1], vec![2, 3, 4], vec![3]],
            1,
        );
        for w in q.costs.windows(2) {
            assert!(w[0] >= w[1], "queue not sorted by descending cost: {:?}", q.costs);
        }
        let mut items: Vec<u32> = q.order.clone();
        items.sort_unstable();
        assert_eq!(items, (0..q.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn claims_drain_the_queue_exactly_once() {
        let q = queue_for(&vec![vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]; 3], 1);
        let mut seen = vec![false; q.len()];
        while let Some((start, len)) = q.claim() {
            for (slot, claimed) in seen.iter_mut().enumerate().skip(start).take(len) {
                assert!(!*claimed, "slot {slot} claimed twice");
                *claimed = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "queue drained with unclaimed slots");
        assert!(q.claim().is_none(), "drained queue must stay drained");
    }

    #[test]
    fn limited_queue_excludes_completed_items() {
        let (_, tree) = crate::growth::try_build_tree(
            &TransactionDb::from_rows(&vec![vec![0u32, 1, 2, 3, 4, 5]; 3]),
            1,
            None,
        )
        .unwrap();
        let array = cfp_array::convert(&tree);
        let q = TaskQueue::with_limit(&array, 4);
        assert_eq!(q.len(), 4);
        let mut items: Vec<u32> = q.order.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3], "items ≥ max_item are already mined");
        let q = TaskQueue::with_limit(&array, 99);
        assert_eq!(q.len(), array.num_items(), "limit clamps to the item count");
    }

    #[test]
    fn empty_array_yields_no_claims() {
        let (_, tree) = crate::growth::try_build_tree(&TransactionDb::new(), 1, None).unwrap();
        let q = TaskQueue::new(&cfp_array::convert(&tree));
        assert_eq!(q.len(), 0);
        assert!(q.claim().is_none());
    }

    #[test]
    fn concurrent_claims_partition_the_queue() {
        let q = std::sync::Arc::new(queue_for(&vec![(0..32u32).collect::<Vec<_>>(); 4], 1));
        let claimed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some((start, len)) = q.claim() {
                            mine.extend(start..start + len);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..q.len()).collect::<Vec<_>>(), "claims must partition the slots");
    }
}
