//! The CFP-growth mining algorithm.
//!
//! CFP-growth is FP-growth with both phases running on compressed
//! structures. One invocation:
//!
//! 1. **Scan** — count item supports, recode frequent items densely in
//!    descending support order ([`cfp_data::ItemRecoder`]).
//! 2. **Build** — insert every recoded transaction into a
//!    [`CfpTree`].
//! 3. **Convert** — transform the CFP-tree into a [`CfpArray`]
//!    (§3.5); tree and array coexist briefly, which is exactly the peak
//!    the paper describes, then the tree is dropped and its memory
//!    recycled.
//! 4. **Mine** — for each item, least frequent first: emit the itemset,
//!    gather the conditional pattern base by scanning the item's subarray
//!    and walking parent chains, build a *conditional* CFP-tree from the
//!    weighted filtered paths, convert it, recurse.
//!
//! Conditional trees keep the global support order of items (see the
//! discussion in `cfp_fptree::growth`), and a conditional structure that
//! degenerates into a single path short-circuits into direct subset
//! enumeration.

use crate::spill::CondSpill;
use cfp_array::{convert, CfpArray};
use cfp_data::{
    CfpError, Item, ItemRecoder, ItemsetSink, MineStats, Miner, OutputMode, TransactionDb,
};
use cfp_memman::{Arena, ArenaOptions, BudgetPool, Component, MemoryBudget, StatsReset};
use cfp_metrics::{HeapSize, MemGauge, Stopwatch};
use cfp_trace::{span, Phase};
use cfp_tree::{CfpTree, CfpTreeConfig};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Options threaded through the mine phase's conditional-tree recursion.
///
/// The defaults reproduce the classic behaviour exactly: conditional
/// trees are uncapped and never compact. The recovery ladder
/// ([`crate::supervisor::Supervisor`]) passes a shared [`BudgetPool`] so
/// that *every* arena of a run — the initial tree and all conditional
/// trees — answers to one limit, and turns on compact-on-pressure so a
/// denied allocation first reclaims trailing free chunks and retries.
#[derive(Clone, Debug, Default)]
pub struct MineOpts {
    /// Shared byte pool charged by the initial and conditional tree
    /// arenas. Exhaustion surfaces as [`CfpError::MemoryExhausted`].
    pub pool: Option<BudgetPool>,
    /// Compact an arena and retry once before reporting exhaustion.
    pub compact_on_pressure: bool,
    /// Round-trip oversized conditional CFP-arrays through spill files
    /// ([`CondSpill`]), leaving their data bytes outside pool-metered
    /// memory. Armed by the supervisor's spill rung; `None` keeps every
    /// conditional structure in RAM (classic behaviour).
    pub cond_spill: Option<CondSpill>,
    /// Cooperative cancellation, polled between top-level items (and at
    /// scheduler task boundaries in the parallel driver). When it fires,
    /// mining stops at the next boundary with [`CfpError::Interrupted`];
    /// everything emitted so far sits at an exact item watermark.
    pub cancel: Option<cfp_fault::CancelToken>,
    /// Resume support: the first `resume_skip` top-level items (in the
    /// descending mining order, i.e. items `n-1 … n-resume_skip`) were
    /// fully emitted by a previous run and are skipped without emitting
    /// anything. Progress notifications still report *global* completed
    /// counts, so a resumed run checkpoints seamlessly. Under a
    /// condensed [`output`](Self::output) mode the skipped items are
    /// re-mined *silently* — their itemsets rebuild the subsumption
    /// index without reaching the sink, so the resumed emission stream
    /// continues byte-exactly. `resume_skip` does not compose with
    /// [`OutputMode::TopK`].
    pub resume_skip: u64,
    /// Which itemsets this run reports (see [`OutputMode`]). The
    /// condensed modes run closure/maximality checks inside the
    /// recursion; `TopK` collects into a shared bounded heap and emits
    /// the winners, sorted, at the end of the run.
    pub output: OutputMode,
}

impl MineOpts {
    fn arena_options(&self, budget: Option<u64>, component: Component) -> ArenaOptions {
        ArenaOptions {
            budget: budget.map(MemoryBudget::new),
            pool: self.pool.clone(),
            compact_on_pressure: self.compact_on_pressure,
            component,
        }
    }
}

/// Inverted index over accepted condensed itemsets, answering "is this
/// candidate contained in an already-accepted itemset?" — with equal
/// support for closed mode, support-agnostic for maximal mode. Itemsets
/// are stored and queried with *original* item ids sorted ascending,
/// exactly as they are emitted.
#[derive(Debug, Default)]
pub(crate) struct SubsumeIndex {
    entries: Vec<(Vec<Item>, u64)>,
    by_item: HashMap<Item, Vec<u32>>,
}

impl SubsumeIndex {
    /// Records an accepted itemset.
    pub(crate) fn insert(&mut self, set: &[Item], support: u64) {
        let id = self.entries.len() as u32;
        for &it in set {
            self.by_item.entry(it).or_default().push(id);
        }
        self.entries.push((set.to_vec(), support));
    }

    /// True when an indexed itemset contains every item of `set` (and,
    /// when `support` is given, has exactly that support). Candidates
    /// are checked before insertion and the enumeration tree visits
    /// each itemset once, so a hit is always a *proper* superset.
    pub(crate) fn subsumes(&self, set: &[Item], support: Option<u64>) -> bool {
        // Scan only the shortest posting list among the set's items.
        let mut best: Option<&Vec<u32>> = None;
        for it in set {
            match self.by_item.get(it) {
                None => return false,
                Some(list) => {
                    if best.is_none_or(|b| list.len() < b.len()) {
                        best = Some(list);
                    }
                }
            }
        }
        let Some(list) = best else {
            return false; // an empty candidate never occurs
        };
        list.iter().any(|&id| {
            let (entry, sup) = &self.entries[id as usize];
            entry.len() >= set.len()
                && support.is_none_or(|s| *sup == s)
                && is_subset_sorted(set, entry)
        })
    }
}

/// `small ⊆ big`, both sorted ascending.
fn is_subset_sorted(small: &[Item], big: &[Item]) -> bool {
    let mut it = big.iter();
    small.iter().all(|s| it.any(|b| b == s))
}

/// Shared state of a streaming top-k run: a min-heap of the best `k`
/// `(support, itemset)` pairs — higher support wins, ties broken toward
/// the lexicographically smaller itemset — plus a monotonically rising
/// admission bound. One instance is shared by every worker of a run, so
/// the retained set is the true global top-k regardless of schedule.
#[derive(Debug)]
pub(crate) struct TopKState {
    k: usize,
    bound: AtomicU64,
    heap: Mutex<TopKHeap>,
}

/// Min-heap entry order: worst retained `(support, itemset)` on top.
type TopKHeap = BinaryHeap<Reverse<(u64, Reverse<Vec<Item>>)>>;

impl TopKState {
    pub(crate) fn new(k: usize) -> Self {
        TopKState {
            k,
            bound: AtomicU64::new(0),
            heap: Mutex::new(BinaryHeap::with_capacity(k + 1)),
        }
    }

    /// Support of the worst retained itemset once `k` are held, else 0.
    /// Any candidate *strictly* below the bound — and its whole subtree,
    /// since extensions never gain support — can be pruned. The bound
    /// only rises, so a stale read is merely conservative.
    pub(crate) fn bound(&self) -> u64 {
        self.bound.load(Ordering::Relaxed)
    }

    /// Offers a candidate; evicts the worst entry when over `k`.
    pub(crate) fn offer(&self, set: &[Item], support: u64) {
        if self.k == 0 || support < self.bound() {
            return;
        }
        let mut heap = self.heap.lock().unwrap_or_else(|e| e.into_inner());
        heap.push(Reverse((support, Reverse(set.to_vec()))));
        if heap.len() > self.k {
            heap.pop();
        }
        if heap.len() == self.k {
            if let Some(worst) = heap.peek() {
                self.bound.store(worst.0 .0, Ordering::Relaxed);
            }
        }
    }

    /// The retained itemsets, highest support first, ties in ascending
    /// lexicographic order — the final emission order of a top-k run.
    pub(crate) fn drain_sorted(&self) -> Vec<(Vec<Item>, u64)> {
        let heap = std::mem::take(&mut *self.heap.lock().unwrap_or_else(|e| e.into_inner()));
        let mut v: Vec<(u64, Reverse<Vec<Item>>)> = heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v.into_iter().map(|(s, i)| (i.0, s)).collect()
    }
}

/// Per-run (or, in the parallel driver, per-task) runtime state of the
/// active [`OutputMode`]. The closed/maximal indexes grow as itemsets
/// are accepted; the top-k state is shared across all workers of a run.
#[derive(Debug)]
pub(crate) enum ModeCtx {
    /// Report every frequent itemset.
    All,
    /// Closure checking against an emitted-closed index.
    Closed(SubsumeIndex),
    /// Maximality pruning against an emitted-maximal index.
    Maximal(SubsumeIndex),
    /// Streaming top-k with a rising admission bound.
    TopK(Arc<TopKState>),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    All,
    Closed,
    Maximal,
    TopK,
}

impl ModeCtx {
    /// Fresh per-run state for `output`.
    pub(crate) fn new(output: OutputMode) -> Self {
        match output {
            OutputMode::All => ModeCtx::All,
            OutputMode::Closed => ModeCtx::Closed(SubsumeIndex::default()),
            OutputMode::Maximal => ModeCtx::Maximal(SubsumeIndex::default()),
            OutputMode::TopK(k) => ModeCtx::TopK(Arc::new(TopKState::new(k))),
        }
    }

    /// Like [`new`](Self::new), but top-k joins an existing shared
    /// state — how parallel workers and spill partitions cooperate on
    /// one global heap.
    pub(crate) fn new_shared(output: OutputMode, topk: &Option<Arc<TopKState>>) -> Self {
        match (output, topk) {
            (OutputMode::TopK(_), Some(state)) => ModeCtx::TopK(Arc::clone(state)),
            _ => ModeCtx::new(output),
        }
    }

    fn kind(&self) -> ModeKind {
        match self {
            ModeCtx::All => ModeKind::All,
            ModeCtx::Closed(_) => ModeKind::Closed,
            ModeCtx::Maximal(_) => ModeKind::Maximal,
            ModeCtx::TopK(_) => ModeKind::TopK,
        }
    }
}

/// Emits a finished top-k run's retained itemsets into `sink` (highest
/// support first, ties lexicographic) and returns how many there were.
/// No-op for every other mode.
pub(crate) fn drain_topk(mode: &ModeCtx, sink: &mut dyn ItemsetSink) -> u64 {
    let ModeCtx::TopK(state) = mode else {
        return 0;
    };
    let winners = state.drain_sorted();
    let n = winners.len() as u64;
    for (set, support) in winners {
        sink.emit(&set, support);
        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_PATTERNS.inc();
        }
    }
    n
}

/// RAII attribution of a flat CFP-array buffer to the run's budget pool.
///
/// The charge is *unmetered* ([`BudgetPool::charge_external`]): it feeds
/// the per-component gauges of the memstat report but never affects
/// admission, so mining output stays byte-identical with attribution on.
/// Dropping the guard releases the charge on every path, including
/// errors.
pub(crate) struct ArrayCharge {
    pool: Option<BudgetPool>,
    component: Component,
    bytes: u64,
}

impl ArrayCharge {
    pub(crate) fn new(pool: Option<BudgetPool>, bytes: u64) -> Self {
        Self::with_component(pool, Component::CondArrays, bytes)
    }

    /// An external charge against an explicit component — the spill rung
    /// attributes loaded spill buffers to [`Component::Spill`] this way.
    pub(crate) fn with_component(
        pool: Option<BudgetPool>,
        component: Component,
        bytes: u64,
    ) -> Self {
        if let Some(p) = &pool {
            p.charge_external(component, bytes);
        }
        ArrayCharge { pool, component, bytes }
    }
}

impl Drop for ArrayCharge {
    fn drop(&mut self) {
        if let Some(p) = &self.pool {
            p.release_external(self.component, self.bytes);
        }
    }
}

/// Charges a conditional array's bytes to the pool with the right
/// attribution: an in-RAM array is a `CondArrays` charge for its whole
/// heap footprint; a spilled (shared-buffer) array additionally
/// attributes its data block — which `heap_bytes` no longer counts — to
/// [`Component::Spill`].
fn charge_cond_array(
    pool: &Option<BudgetPool>,
    array: &CfpArray,
) -> (ArrayCharge, Option<ArrayCharge>) {
    let charge = ArrayCharge::new(pool.clone(), array.heap_bytes());
    let spill = array
        .is_shared()
        .then(|| ArrayCharge::with_component(pool.clone(), Component::Spill, array.data_bytes()));
    (charge, spill)
}

/// Per-worker reusable mine-phase state.
///
/// With `recycle` on, the first conditional tree's arena is kept after
/// conversion, [`Arena::reset`] wipes it (releasing its budget-pool
/// reservation), and the next conditional tree rebuilds inside it — so a
/// worker touching thousands of first-level items performs one heap
/// allocation ramp-up instead of one per item. Only one conditional tree
/// is ever alive per worker (`conditional` drops it before the recursion
/// continues), so a single slot suffices.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Recycle one long-lived arena across conditional trees.
    pub recycle: bool,
    /// The recycled arena (lazily captured from the first conditional
    /// tree built while recycling is on).
    pub arena: Option<Arena>,
}

impl Scratch {
    /// Scratch state with arena recycling armed.
    pub fn recycling() -> Self {
        Scratch { recycle: true, arena: None }
    }

    /// Takes the recycled arena, if recycling is armed and one is stashed.
    fn take_arena(&mut self) -> Option<Arena> {
        if self.recycle {
            self.arena.take()
        } else {
            None
        }
    }
}

/// Rewrites the phase of a memory-exhaustion error to `"mine"`:
/// conditional-tree construction goes through the same build entry
/// points as the initial tree, but failures there happen mid-mining.
fn mine_phase(e: CfpError) -> CfpError {
    match e {
        CfpError::MemoryExhausted { requested, footprint, limit, .. } => {
            CfpError::MemoryExhausted { phase: "mine", requested, footprint, limit }
        }
        other => other,
    }
}

/// The CFP-growth miner.
#[derive(Clone, Debug)]
pub struct CfpGrowthMiner {
    /// Enumerate single-path structures directly instead of recursing.
    pub single_path_opt: bool,
    /// Byte cap on the initial tree's arena. When set, exceeding it
    /// surfaces as [`CfpError::MemoryExhausted`] from
    /// [`Miner::try_mine`] (or a panic from the infallible
    /// [`Miner::mine`]). The build phase dominates the peak, so the cap
    /// governs it only; conditional trees during mining stay uncapped.
    pub mem_budget: Option<u64>,
}

impl Default for CfpGrowthMiner {
    fn default() -> Self {
        CfpGrowthMiner { single_path_opt: true, mem_budget: None }
    }
}

impl CfpGrowthMiner {
    /// A miner with default options.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the scan and build phases: returns the recoder and the initial
/// CFP-tree. Exposed separately so benchmarks can time phases.
pub fn build_tree(db: &TransactionDb, min_support: u64) -> (ItemRecoder, CfpTree) {
    try_build_tree(db, min_support, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_tree`]: the tree arena is capped at `budget` bytes
/// when given, and exhaustion comes back as
/// [`CfpError::MemoryExhausted`] with the phase set to `"build"`.
pub fn try_build_tree(
    db: &TransactionDb,
    min_support: u64,
    budget: Option<u64>,
) -> Result<(ItemRecoder, CfpTree), CfpError> {
    try_build_tree_with(
        db,
        min_support,
        ArenaOptions {
            budget: budget.map(MemoryBudget::new),
            component: Component::BuildTree,
            ..Default::default()
        },
    )
}

/// [`try_build_tree`] with full [`ArenaOptions`]: the initial tree can
/// draw from a shared [`BudgetPool`] and compact under pressure.
pub fn try_build_tree_with(
    db: &TransactionDb,
    min_support: u64,
    opts: ArenaOptions,
) -> Result<(ItemRecoder, CfpTree), CfpError> {
    let recoder = ItemRecoder::scan(db, min_support);
    let tree = CfpTree::try_from_db_with(db, &recoder, opts)?;
    Ok((recoder, tree))
}

struct Ctx<'a> {
    sink: &'a mut dyn ItemsetSink,
    gauge: MemGauge,
    min_support: u64,
    single_path_opt: bool,
    opts: MineOpts,
    scratch: &'a mut Scratch,
    mode: &'a mut ModeCtx,
    /// Suppress sink emission (and itemset counting) while re-mining
    /// items a resumed condensed run already reported — the subsumption
    /// index still fills, so later checks see exactly the state an
    /// uninterrupted run would have.
    quiet: bool,
    suffix: Vec<Item>,
    emit_buf: Vec<Item>,
    path_buf: Vec<u32>,
    itemsets: u64,
}

impl Ctx<'_> {
    /// Sorts the current suffix into `emit_buf` — the candidate itemset
    /// in emission form.
    fn build_candidate(&mut self) {
        self.emit_buf.clear();
        self.emit_buf.extend_from_slice(&self.suffix);
        self.emit_buf.sort_unstable();
    }

    /// All/top-k emission of the current suffix: the classic path sends
    /// it to the sink; a top-k run offers it to the shared heap instead
    /// (winners reach the sink sorted, at the end of the run).
    fn emit(&mut self, support: u64) {
        self.build_candidate();
        if let ModeCtx::TopK(state) = &*self.mode {
            state.offer(&self.emit_buf, support);
            return;
        }
        self.emit_candidate(support);
    }

    /// Forwards the already-built candidate in `emit_buf` to the sink,
    /// unless this subtree is being silently re-mined after a resume.
    fn emit_candidate(&mut self, support: u64) {
        if self.quiet {
            return;
        }
        self.sink.emit(&self.emit_buf, support);
        self.itemsets += 1;
        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_PATTERNS.inc();
        }
    }

    /// Is the candidate in `emit_buf` contained in an accepted itemset?
    /// (`Some(s)` additionally requires equal support — the closed-mode
    /// query; `None` is the maximal-mode query.)
    fn candidate_subsumed(&self, support: Option<u64>) -> bool {
        match &*self.mode {
            ModeCtx::Closed(ix) | ModeCtx::Maximal(ix) => ix.subsumes(&self.emit_buf, support),
            _ => false,
        }
    }

    /// Records the candidate in `emit_buf` as accepted.
    fn insert_candidate(&mut self, support: u64) {
        match &mut *self.mode {
            ModeCtx::Closed(ix) | ModeCtx::Maximal(ix) => ix.insert(&self.emit_buf, support),
            _ => {}
        }
    }

    /// Current top-k admission bound (0 outside top-k mode).
    fn topk_bound(&self) -> u64 {
        match &*self.mode {
            ModeCtx::TopK(state) => state.bound(),
            _ => 0,
        }
    }
}

impl Miner for CfpGrowthMiner {
    fn name(&self) -> &'static str {
        "cfp-growth"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        self.try_mine(db, min_support, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> Result<MineStats, CfpError> {
        self.try_mine_with(db, min_support, sink, &MineOpts::default())
    }
}

impl CfpGrowthMiner {
    /// [`Miner::try_mine`] with explicit [`MineOpts`]: a shared budget
    /// pool covering the initial *and* every conditional tree, and
    /// compact-on-pressure retry. `try_mine` delegates here with the
    /// defaults, so its behaviour is unchanged.
    pub fn try_mine_with(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
        opts: &MineOpts,
    ) -> Result<MineStats, CfpError> {
        let mut stats = MineStats::default();
        let gauge = MemGauge::new();
        let mut sw = Stopwatch::start();

        let recoder = {
            let _s = span(Phase::Count);
            ItemRecoder::scan(db, min_support)
        };
        stats.scan_time = sw.lap();

        let tree = {
            let _s = span(Phase::Build);
            CfpTree::try_from_db_with(
                db,
                &recoder,
                opts.arena_options(self.mem_budget, Component::BuildTree),
            )?
        };
        stats.build_time = sw.lap();

        self.convert_and_mine(&recoder, tree, min_support, sink, stats, gauge, sw, opts)
    }
    /// The common back half of a run: conversion, recursive mining, and
    /// bookkeeping. Shared by [`Miner::mine`] and the streaming
    /// [`mine_file`](crate::io::mine_file) pipeline.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn convert_and_mine(
        &self,
        recoder: &ItemRecoder,
        tree: CfpTree,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
        mut stats: MineStats,
        gauge: MemGauge,
        mut sw: Stopwatch,
        opts: &MineOpts,
    ) -> Result<MineStats, CfpError> {
        gauge.alloc(tree.heap_bytes());
        gauge.checkpoint();
        stats.tree_nodes = tree.num_nodes();

        // Tree and array coexist during conversion: that is the build-phase
        // memory peak of CFP-growth (§3.5).
        let array = {
            let _s = span(Phase::Convert);
            convert(&tree)
        };
        gauge.alloc(array.heap_bytes());
        let _array_charge = ArrayCharge::new(opts.pool.clone(), array.heap_bytes());
        gauge.checkpoint();
        gauge.free(tree.heap_bytes());
        drop(tree);
        stats.convert_time = sw.lap();

        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_FIRST_LEVEL_ITEMS.record(globals.len() as u64);
        }
        let mut scratch = Scratch::default();
        let mut mode = ModeCtx::new(opts.output);
        let itemsets = {
            let mut ctx = Ctx {
                sink,
                gauge: gauge.clone(),
                min_support,
                single_path_opt: self.single_path_opt,
                opts: opts.clone(),
                scratch: &mut scratch,
                mode: &mut mode,
                quiet: false,
                suffix: Vec::new(),
                emit_buf: Vec::new(),
                path_buf: Vec::new(),
                itemsets: 0,
            };
            let _s = span(Phase::Mine);
            mine_array(&array, &globals, &mut ctx)?;
            ctx.itemsets
        };
        // A top-k run emits nothing while mining; the retained winners
        // reach the sink here, sorted, once the bound is final.
        let itemsets = itemsets + drain_topk(&mode, sink);
        stats.mine_time = sw.lap();

        gauge.free(array.heap_bytes());
        stats.itemsets = itemsets;
        stats.peak_bytes = gauge.peak();
        stats.avg_bytes = gauge.average();
        Ok(stats)
    }
}

/// If the whole `array` is one single path, enumerates it directly into
/// `sink` exactly as the sequential miner's shortcut would, returning
/// the itemset count; returns `None` when the array branches. The
/// parallel driver checks this before decomposing per item, because the
/// per-item decomposition groups output by first-level item while the
/// sequential shortcut groups by path depth — without this check the
/// two orders diverge on degenerate (single-path) inputs.
pub(crate) fn mine_single_path_root(
    array: &CfpArray,
    globals: &[Item],
    min_support: u64,
    sink: &mut dyn ItemsetSink,
    opts: &MineOpts,
    mode: &mut ModeCtx,
) -> Option<u64> {
    let path = single_path(array)?;
    if cfp_trace::enabled() {
        cfp_trace::span::single_path();
    }
    let mut scratch = Scratch::default();
    let mut ctx = Ctx {
        sink,
        gauge: MemGauge::new(),
        min_support,
        single_path_opt: true,
        opts: opts.clone(),
        scratch: &mut scratch,
        mode,
        quiet: false,
        suffix: Vec::new(),
        emit_buf: Vec::new(),
        path_buf: Vec::new(),
        itemsets: 0,
    };
    enumerate_single_path(&path, globals, &mut ctx);
    Some(ctx.itemsets)
}

/// Sequentially mines a pre-built top-level CFP-array — the spill rung's
/// entry point for arrays loaded back from disk, where no tree or
/// database exists anymore. Behaves exactly like the mine phase of
/// [`CfpGrowthMiner::try_mine_with`] on the same array and returns the
/// number of itemsets emitted.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mine_loaded(
    array: &CfpArray,
    globals: &[Item],
    min_support: u64,
    single_path_opt: bool,
    sink: &mut dyn ItemsetSink,
    opts: &MineOpts,
    mode: &mut ModeCtx,
) -> Result<u64, CfpError> {
    let _s = span(Phase::Mine);
    let mut scratch = Scratch::default();
    let mut ctx = Ctx {
        sink,
        gauge: MemGauge::new(),
        min_support,
        single_path_opt,
        opts: opts.clone(),
        scratch: &mut scratch,
        mode,
        quiet: false,
        suffix: Vec::new(),
        emit_buf: Vec::new(),
        path_buf: Vec::new(),
        itemsets: 0,
    };
    mine_array(array, globals, &mut ctx)?;
    Ok(ctx.itemsets)
}

/// Mines the complete subtree of one first-level item: emits `{item}`
/// and recurses through its conditional structures. Returns the number of
/// itemsets emitted and the peak bytes of the conditional structures.
/// This is the unit of work the parallel driver distributes (each
/// first-level item is independent of the others). `scratch` carries the
/// worker's recycled arena between calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mine_one_item(
    array: &CfpArray,
    item: u32,
    globals: &[Item],
    min_support: u64,
    single_path_opt: bool,
    sink: &mut dyn ItemsetSink,
    opts: &MineOpts,
    scratch: &mut Scratch,
    mode: &mut ModeCtx,
) -> Result<(u64, u64), CfpError> {
    let gauge = MemGauge::new();
    let mut ctx = Ctx {
        sink,
        gauge: gauge.clone(),
        min_support,
        single_path_opt,
        opts: opts.clone(),
        scratch,
        mode,
        quiet: false,
        suffix: Vec::new(),
        emit_buf: Vec::new(),
        path_buf: Vec::new(),
        itemsets: 0,
    };
    let task_t0 = cfp_trace::hist::maybe_now();
    ctx.suffix.push(globals[item as usize]);
    mine_node(array, item, globals, array.item_support(item), &mut ctx)?;
    ctx.suffix.pop();
    cfp_trace::hist::record_since(&cfp_trace::hist::CORE_MINE_TASK_NANOS, task_t0);
    if cfp_trace::enabled() {
        cfp_trace::counters::CORE_ITEMS_MINED.inc();
    }
    Ok((ctx.itemsets, gauge.peak()))
}

/// Mines every frequent itemset of `array` combined with the suffix in
/// `ctx`; `globals` maps local ids to original items.
fn mine_array(array: &CfpArray, globals: &[Item], ctx: &mut Ctx<'_>) -> Result<(), CfpError> {
    if ctx.single_path_opt {
        if let Some(path) = single_path(array) {
            if cfp_trace::enabled() {
                cfp_trace::span::single_path();
            }
            enumerate_single_path(&path, globals, ctx);
            return Ok(());
        }
    }
    let n = array.num_items() as u32;
    // Only the outermost loop (empty suffix) walks first-level items —
    // those are the resumable units: cancellation is polled, completed
    // prefixes from a previous run are skipped, and progress is reported
    // per completed item. Recursive calls arrive with a non-empty suffix
    // and none of that applies.
    let top = ctx.suffix.is_empty();
    for item in (0..n).rev() {
        let mut quiet_item = false;
        if top {
            if (item as u64) + ctx.opts.resume_skip >= n as u64 {
                // Emitted by the run being resumed. The condensed modes
                // re-mine it silently, because the subsumption index
                // must hold its accepted itemsets for later checks;
                // everything else skips outright.
                if !ctx.opts.output.is_condensed() {
                    continue;
                }
                quiet_item = true;
            }
            if let Some(cancel) = &ctx.opts.cancel {
                if cancel.is_cancelled() {
                    return Err(CfpError::Interrupted);
                }
            }
        }
        let support = array.item_support(item);
        if support < ctx.min_support {
            continue;
        }
        let was_quiet = ctx.quiet;
        ctx.quiet = ctx.quiet || quiet_item;
        let task_t0 = if top { cfp_trace::hist::maybe_now() } else { None };
        ctx.suffix.push(globals[item as usize]);
        let node = mine_node(array, item, globals, support, ctx);
        ctx.suffix.pop();
        ctx.quiet = was_quiet;
        node?;
        cfp_trace::hist::record_since(&cfp_trace::hist::CORE_MINE_TASK_NANOS, task_t0);
        if top && !quiet_item {
            if cfp_trace::enabled() {
                cfp_trace::counters::CORE_ITEMS_MINED.inc();
            }
            // Every itemset of items n-1 … item is now in the sink; the
            // output sits at an exact watermark of n-item completed
            // top-level items (counting ones skipped on resume).
            let emit_t0 = cfp_trace::hist::maybe_now();
            let emitted =
                ctx.sink.progress(cfp_data::MineProgress::Items { done: (n - item) as u64 });
            cfp_trace::hist::record_since(&cfp_trace::hist::CORE_EMIT_NANOS, emit_t0);
            emitted?;
        }
    }
    Ok(())
}

/// Processes one node of the enumeration tree — the suffix, whose last
/// item `item` is already pushed, with support `support` — under the
/// active output mode: runs the mode's pruning checks, decides
/// emission, and recurses into the conditional structure.
fn mine_node(
    array: &CfpArray,
    item: u32,
    globals: &[Item],
    support: u64,
    ctx: &mut Ctx<'_>,
) -> Result<(), CfpError> {
    match ctx.mode.kind() {
        ModeKind::All | ModeKind::TopK => {
            if ctx.mode.kind() == ModeKind::TopK && support < ctx.topk_bound() {
                // Extensions never gain support: the whole subtree sits
                // below the admission bound.
                if cfp_trace::enabled() {
                    cfp_trace::counters::CORE_TOPK_PRUNED.inc();
                }
                return Ok(());
            }
            ctx.emit(support);
            if item > 0 {
                if let Some(cond) = conditional(array, item, globals, support, ctx)? {
                    recurse_into(cond, ctx)?;
                }
                record_rec_exit(item, globals);
            }
        }
        ModeKind::Closed => {
            ctx.build_candidate();
            if ctx.candidate_subsumed(Some(support)) {
                // An accepted closed itemset contains the candidate at
                // equal support, so it also contains — at equal support
                // — every extension in this subtree: nothing here is
                // closed (the FPclose subtree prune).
                if cfp_trace::enabled() {
                    cfp_trace::counters::CORE_CLOSED_PRUNED.inc();
                }
                return Ok(());
            }
            let cond =
                if item > 0 { conditional(array, item, globals, support, ctx)? } else { None };
            if cond.as_ref().is_some_and(|c| c.support_preserved) {
                // LCM prefix-preservation test over the conditional
                // database: some conditional item occurs in every
                // occurrence of the candidate, so a proper superset has
                // equal support — not closed. The subtree still holds
                // closed itemsets; recursion continues.
                if cfp_trace::enabled() {
                    cfp_trace::counters::CORE_CLOSED_PRUNED.inc();
                }
            } else {
                ctx.build_candidate();
                ctx.emit_candidate(support);
                ctx.insert_candidate(support);
            }
            if item > 0 {
                if let Some(cond) = cond {
                    recurse_into(cond, ctx)?;
                }
                record_rec_exit(item, globals);
            }
        }
        ModeKind::Maximal => {
            let cond =
                if item > 0 { conditional(array, item, globals, support, ctx)? } else { None };
            match cond {
                None => {
                    // Empty tail: no frequent extension exists below the
                    // candidate, so it is maximal unless an accepted
                    // maximal itemset already contains it.
                    ctx.build_candidate();
                    if ctx.candidate_subsumed(None) {
                        if cfp_trace::enabled() {
                            cfp_trace::counters::CORE_MAXIMAL_PRUNED.inc();
                        }
                    } else {
                        ctx.emit_candidate(support);
                        ctx.insert_candidate(support);
                    }
                    if item > 0 {
                        record_rec_exit(item, globals);
                    }
                }
                Some(cond) => {
                    // HUTMFI lookahead: when candidate ∪ tail is inside
                    // an accepted maximal itemset, every itemset in this
                    // subtree is a proper subset of it — prune.
                    ctx.emit_buf.clear();
                    ctx.emit_buf.extend_from_slice(&ctx.suffix);
                    ctx.emit_buf.extend_from_slice(&cond.globals);
                    ctx.emit_buf.sort_unstable();
                    if ctx.candidate_subsumed(None) {
                        if cfp_trace::enabled() {
                            cfp_trace::counters::CORE_MAXIMAL_PRUNED.inc();
                        }
                    } else {
                        recurse_into(cond, ctx)?;
                    }
                    record_rec_exit(item, globals);
                }
            }
        }
    }
    Ok(())
}

/// Charges, mines, and releases a conditional structure.
fn recurse_into(cond: Cond, ctx: &mut Ctx<'_>) -> Result<(), CfpError> {
    ctx.gauge.alloc(cond.array.heap_bytes());
    let _charges = charge_cond_array(&ctx.opts.pool, &cond.array);
    ctx.gauge.checkpoint();
    mine_array(&cond.array, &cond.globals, ctx)?;
    ctx.gauge.free(cond.array.heap_bytes());
    Ok(())
}

/// The matching exit of the RecEnter recorded inside [`conditional`].
fn record_rec_exit(item: u32, globals: &[Item]) {
    if cfp_trace::events::capturing() {
        cfp_trace::events::record(cfp_trace::events::EventKind::RecExit {
            item: globals[item as usize],
        });
    }
}

/// A built conditional structure, plus what closed mode learned from
/// the frequency pass over the conditional pattern base.
struct Cond {
    array: CfpArray,
    globals: Vec<Item>,
    /// Some conditional item appears in *every* occurrence of the
    /// candidate (`freq == support`): a proper superset has equal
    /// support, so the candidate is not closed.
    support_preserved: bool,
}

/// Builds the conditional CFP-array of `item`: conditional pattern base →
/// conditional CFP-tree → conversion. Returns `None` when no conditional
/// item stays frequent. `support` is the candidate's support (the item's
/// support within `array`), used only for the closed-mode verdict.
fn conditional(
    array: &CfpArray,
    item: u32,
    globals: &[Item],
    support: u64,
    ctx: &mut Ctx<'_>,
) -> Result<Option<Cond>, CfpError> {
    // Pass A: conditional frequencies along all prefix paths.
    let mut freq = vec![0u64; item as usize];
    let mut path = std::mem::take(&mut ctx.path_buf);
    let mut pattern_base = 0usize;
    for node in array.subarray(item) {
        pattern_base += 1;
        array.prefix_path(item, &node, &mut path);
        for &it in &path {
            freq[it as usize] += node.count;
        }
    }
    let support_preserved = freq.contains(&support);
    if cfp_trace::enabled() {
        // Depth = suffix length: how many conditional levels we are down.
        cfp_trace::span::conditional_tree(ctx.suffix.len(), pattern_base);
        if cfp_trace::events::capturing() {
            // The matching RecExit is recorded by the caller once the
            // conditional subtree is fully mined (or immediately, when
            // this returns None), so the enter/exit pair brackets the
            // whole recursion.
            cfp_trace::events::record(cfp_trace::events::EventKind::RecEnter {
                item: globals[item as usize],
                depth: ctx.suffix.len().min(u16::MAX as usize) as u16,
                pattern_base: pattern_base as u64,
            });
        }
    }

    let mut remap = vec![u32::MAX; item as usize];
    let mut cond_globals = Vec::new();
    for (old, &f) in freq.iter().enumerate() {
        if f >= ctx.min_support {
            remap[old] = cond_globals.len() as u32;
            cond_globals.push(globals[old]);
        }
    }
    if cond_globals.is_empty() {
        ctx.path_buf = path;
        return Ok(None);
    }

    // Pass B: insert the filtered weighted paths into a conditional tree.
    // Conditional arenas share the run's budget pool (when one is set) and
    // may compact-and-retry; exhaustion surfaces with the "mine" phase.
    // A worker with recycling armed rebuilds inside its long-lived arena
    // instead of allocating a fresh one per conditional tree.
    let mut cond_tree = match ctx.scratch.take_arena() {
        Some(arena) => CfpTree::try_with_arena(cond_globals.len(), CfpTreeConfig::default(), arena),
        None => CfpTree::try_with_options(
            cond_globals.len(),
            CfpTreeConfig::default(),
            ctx.opts.arena_options(None, Component::CondTrees),
        ),
    }
    .map_err(mine_phase)?;
    let mut filtered: Vec<u32> = Vec::new();
    for node in array.subarray(item) {
        array.prefix_path(item, &node, &mut path);
        filtered.clear();
        filtered.extend(
            path.iter().filter(|&&it| remap[it as usize] != u32::MAX).map(|&it| remap[it as usize]),
        );
        if !filtered.is_empty() {
            let weight = u32::try_from(node.count).expect("count exceeds u32");
            if let Err(e) = cond_tree.try_insert(&filtered, weight) {
                ctx.path_buf = path;
                return Err(mine_phase(CfpError::from(e)));
            }
        }
    }
    ctx.path_buf = path;

    if cfp_trace::enabled() {
        cfp_trace::counters::CORE_COND_TREE_BYTES.record_log2(cond_tree.arena_used());
    }
    ctx.gauge.alloc(cond_tree.heap_bytes());
    let cond_array = convert(&cond_tree);
    ctx.gauge.free(cond_tree.heap_bytes());
    if ctx.scratch.recycle {
        let mut arena = cond_tree.into_arena();
        // ClearPeaks: each task gets a fresh per-instance high-water
        // window, so one early giant conditional tree cannot smear its
        // peak across every later task (the run-level peak stays in the
        // budget pool).
        arena.reset_with(StatsReset::ClearPeaks);
        ctx.scratch.arena = Some(arena);
    }
    // Out-of-core hook: an oversized conditional array round-trips
    // through a spill file and comes back as a shared view, so its data
    // block leaves pool-metered memory. The checksum on the file proves
    // the round trip intact; mining a view is byte-identical to mining
    // the owned original.
    let cond_array = match &ctx.opts.cond_spill {
        Some(cs) if cond_array.data_bytes() >= cs.threshold() => cs.round_trip(&cond_array)?,
        _ => cond_array,
    };
    Ok(Some(Cond { array: cond_array, globals: cond_globals, support_preserved }))
}

/// If the array represents a single downward path (every item has exactly
/// one node, chained by parent links), returns its `(item, count)` pairs
/// from the top.
fn single_path(array: &CfpArray) -> Option<Vec<(u32, u64)>> {
    let n = array.num_items() as u32;
    let mut path = Vec::with_capacity(n as usize);
    let mut expected_parent: Option<u32> = None;
    for item in 0..n {
        let mut it = array.subarray(item);
        let node = it.next()?;
        if it.next().is_some() {
            return None;
        }
        let parent = array.parent_of(item, &node).map(|(p, _)| p);
        if parent != expected_parent {
            return None;
        }
        path.push((item, node.count));
        expected_parent = Some(item);
    }
    Some(path)
}

/// Processes a single-path structure directly, without recursing. In
/// all mode this emits every non-empty subset of the path combined with
/// the current suffix (a subset's support is its deepest element's
/// count); the other modes exploit the path shape:
///
/// - **top-k** skips a whole deepest-block when its uniform support sits
///   below the admission bound;
/// - **closed** emits only full prefixes whose next-deeper count
///   strictly drops — any other subset keeps its support when a missing
///   shallower (or the equal-count deeper) item is added — each still
///   subject to the cross-branch subsumption check;
/// - **maximal** looks ahead to the unique candidate, suffix ∪ whole
///   path, and checks it against the emitted-maximal index.
fn enumerate_single_path(path: &[(u32, u64)], globals: &[Item], ctx: &mut Ctx<'_>) {
    fn rec_prefix(
        path: &[(u32, u64)],
        globals: &[Item],
        deepest: usize,
        i: usize,
        support: u64,
        ctx: &mut Ctx<'_>,
    ) {
        if i == deepest {
            return;
        }
        let (item, _) = path[i];
        ctx.suffix.push(globals[item as usize]);
        ctx.emit(support);
        rec_prefix(path, globals, deepest, i + 1, support, ctx);
        ctx.suffix.pop();
        rec_prefix(path, globals, deepest, i + 1, support, ctx);
    }

    match ctx.mode.kind() {
        ModeKind::All | ModeKind::TopK => {
            let topk = ctx.mode.kind() == ModeKind::TopK;
            for deepest in 0..path.len() {
                let (item, count) = path[deepest];
                if topk && count < ctx.topk_bound() {
                    // Every subset of this block has support `count`.
                    if cfp_trace::enabled() {
                        cfp_trace::counters::CORE_TOPK_PRUNED.inc();
                    }
                    continue;
                }
                ctx.suffix.push(globals[item as usize]);
                ctx.emit(count);
                rec_prefix(path, globals, deepest, 0, count, ctx);
                ctx.suffix.pop();
            }
        }
        ModeKind::Closed => {
            for deepest in 0..path.len() {
                let count = path[deepest].1;
                if path.get(deepest + 1).is_some_and(|&(_, c)| c == count) {
                    continue; // the next-deeper extension preserves support
                }
                ctx.emit_buf.clear();
                ctx.emit_buf.extend_from_slice(&ctx.suffix);
                ctx.emit_buf.extend(path[..=deepest].iter().map(|&(it, _)| globals[it as usize]));
                ctx.emit_buf.sort_unstable();
                if ctx.candidate_subsumed(Some(count)) {
                    if cfp_trace::enabled() {
                        cfp_trace::counters::CORE_CLOSED_PRUNED.inc();
                    }
                } else {
                    ctx.emit_candidate(count);
                    ctx.insert_candidate(count);
                }
            }
        }
        ModeKind::Maximal => {
            let Some(&(_, count)) = path.last() else {
                return;
            };
            ctx.emit_buf.clear();
            ctx.emit_buf.extend_from_slice(&ctx.suffix);
            ctx.emit_buf.extend(path.iter().map(|&(it, _)| globals[it as usize]));
            ctx.emit_buf.sort_unstable();
            if ctx.candidate_subsumed(None) {
                if cfp_trace::enabled() {
                    cfp_trace::counters::CORE_MAXIMAL_PRUNED.inc();
                }
            } else {
                ctx.emit_candidate(count);
                ctx.insert_candidate(count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, CountingSink};
    use cfp_fptree::FpGrowthMiner;

    fn mine_collect(db: &TransactionDb, minsup: u64, opt: bool) -> Vec<(Vec<Item>, u64)> {
        let miner = CfpGrowthMiner { single_path_opt: opt, ..Default::default() };
        let mut sink = CollectSink::new();
        miner.mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    fn fp_collect(db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        FpGrowthMiner::new().mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn shared_cond_arrays_charge_the_spill_component_externally() {
        use cfp_data::spill::SpillDir;
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![1, 2, 4],
            vec![1, 2],
            vec![1, 3],
        ]);
        let (_, tree) = try_build_tree(&db, 2, None).unwrap();
        let array = convert(&tree);
        drop(tree);
        let parent = std::env::temp_dir().join(format!("cfp-growth-spill-{}", std::process::id()));
        let dir = std::sync::Arc::new(SpillDir::create(&parent).unwrap());
        let view = crate::spill::CondSpill::new(std::sync::Arc::clone(&dir), 1)
            .round_trip(&array)
            .unwrap();
        assert!(view.is_shared());

        let pool = BudgetPool::new(1 << 20);
        let charges = charge_cond_array(&Some(pool.clone()), &view);
        let snap = pool.snapshot();
        let spill_row =
            snap.components.iter().find(|(name, _, _)| *name == "spill").expect("spill row");
        assert_eq!(spill_row.1, view.data_bytes(), "the shared data block is a spill charge");
        assert_eq!(
            snap.components_total(),
            snap.accounted(),
            "Σ components must stay equal to used + external with spill charges live"
        );
        drop(charges);
        let snap = pool.snapshot();
        assert_eq!(snap.external_used, 0, "dropping the guards releases every charge");
        assert_eq!(snap.components_total(), snap.accounted());
        drop(dir);
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn cond_spill_round_trip_keeps_mining_byte_identical() {
        use cfp_data::spill::SpillDir;
        // A denser db so several conditional arrays exist; threshold 1
        // forces every one of them through the spill file path.
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut db = TransactionDb::new();
        for _ in 0..80 {
            let row: Vec<Item> = (0..10).filter(|_| rng.gen_bool(0.5)).collect();
            db.push(&row);
        }
        let baseline = mine_collect(&db, 3, true);

        let parent =
            std::env::temp_dir().join(format!("cfp-growth-condspill-{}", std::process::id()));
        let dir = std::sync::Arc::new(SpillDir::create(&parent).unwrap());
        let opts = MineOpts {
            cond_spill: Some(crate::spill::CondSpill::new(std::sync::Arc::clone(&dir), 1)),
            ..Default::default()
        };
        let mut sink = CollectSink::new();
        CfpGrowthMiner::new().try_mine_with(&db, 3, &mut sink, &opts).unwrap();
        assert_eq!(sink.into_sorted(), baseline, "spilled conditionals must not change output");
        assert_eq!(
            std::fs::read_dir(dir.path()).unwrap().count(),
            0,
            "every conditional round-trip file is removed after its load"
        );
        drop(dir);
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn textbook_example_matches_fp_growth() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let got = mine_collect(&db, 2, true);
        assert_eq!(got, fp_collect(&db, 2));
        assert!(got.contains(&(vec![1, 2, 5], 2)));
    }

    #[test]
    fn single_path_opt_changes_nothing() {
        let db =
            TransactionDb::from_rows(&[vec![0, 1, 2, 3], vec![0, 1, 2], vec![0, 1], vec![7, 8]]);
        assert_eq!(mine_collect(&db, 1, true), mine_collect(&db, 1, false));
    }

    #[test]
    fn empty_database_and_high_minsup() {
        assert!(mine_collect(&TransactionDb::new(), 1, true).is_empty());
        let db = TransactionDb::from_rows(&[vec![1u32, 2]]);
        assert!(mine_collect(&db, 2, true).is_empty());
    }

    #[test]
    fn pure_single_path_database() {
        let db = TransactionDb::from_rows(&vec![vec![3u32, 5, 9]; 4]);
        let got = mine_collect(&db, 2, true);
        assert_eq!(got.len(), 7);
        assert!(got.iter().all(|(_, s)| *s == 4));
    }

    #[test]
    fn randomized_equivalence_with_fp_growth() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(31337);
        for trial in 0..40 {
            let n_items = rng.gen_range(1..=12);
            let n_txn = rng.gen_range(1..=60);
            let mut db = TransactionDb::new();
            for _ in 0..n_txn {
                let t: Vec<Item> = (0..n_items)
                    .filter(|_| rng.gen_bool(0.4))
                    .map(|i| i as Item * 7 + 3) // non-dense original ids
                    .collect();
                db.push(&t);
            }
            let minsup = rng.gen_range(1..=5);
            assert_eq!(
                mine_collect(&db, minsup, true),
                fp_collect(&db, minsup),
                "trial {trial} minsup {minsup}"
            );
        }
    }

    #[test]
    fn stats_track_memory_and_phases() {
        let db =
            TransactionDb::from_rows(&[vec![1, 2, 3, 4], vec![1, 2, 3], vec![1, 2], vec![2, 3, 4]]);
        let mut sink = CountingSink::new();
        let stats = CfpGrowthMiner::new().mine(&db, 1, &mut sink);
        assert_eq!(stats.itemsets, sink.count);
        assert!(stats.peak_bytes > 0);
        assert!(stats.tree_nodes > 0);
        assert!(stats.avg_bytes > 0);
        assert!(stats.avg_bytes <= stats.peak_bytes);
    }

    #[test]
    fn tiny_budget_fails_structured_and_uncapped_retry_succeeds() {
        let db =
            TransactionDb::from_rows(&[vec![1, 2, 3, 4], vec![1, 2, 3], vec![1, 2], vec![2, 3, 4]]);
        let capped = CfpGrowthMiner { mem_budget: Some(8), ..Default::default() };
        let mut sink = CountingSink::new();
        let err = capped.try_mine(&db, 1, &mut sink).expect_err("8 bytes cannot hold the tree");
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("build"), "{err}");
        // The failure is recoverable in-process: retry without the cap.
        let mut sink = CountingSink::new();
        let stats = CfpGrowthMiner::new().try_mine(&db, 1, &mut sink).expect("uncapped mine");
        assert_eq!(stats.itemsets, sink.count);
        assert!(sink.count > 0);
    }

    #[test]
    fn generous_budget_mines_identically() {
        let db =
            TransactionDb::from_rows(&[vec![1, 2, 3, 4], vec![1, 2, 3], vec![1, 2], vec![2, 3, 4]]);
        let capped = CfpGrowthMiner { mem_budget: Some(1 << 20), ..Default::default() };
        let mut sink = CollectSink::new();
        capped.try_mine(&db, 1, &mut sink).expect("1 MiB is plenty");
        assert_eq!(sink.into_sorted(), mine_collect(&db, 1, true));
    }

    #[test]
    fn exhausted_pool_fails_structured_in_the_mine_phase() {
        // An uncapped initial build followed by mining under a pool too
        // small for even a conditional tree's root slot: the failure must
        // be a structured MemoryExhausted naming the mine phase, not a
        // panic (the conditional recursion is fallible end to end).
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![1, 3],
        ]);
        let (recoder, tree) = try_build_tree(&db, 1, None).expect("uncapped build");
        let array = convert(&tree);
        drop(tree);
        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        let opts = MineOpts {
            pool: Some(BudgetPool::new(4)),
            compact_on_pressure: true,
            ..Default::default()
        };
        let mut sink = CountingSink::new();
        let last = recoder.num_items() as u32 - 1;
        let err = mine_one_item(
            &array,
            last,
            &globals,
            1,
            false,
            &mut sink,
            &opts,
            &mut Scratch::default(),
            &mut ModeCtx::All,
        )
        .expect_err("a 4-byte pool cannot hold a conditional tree root");
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("mine"), "{err}");
    }

    #[test]
    fn cancel_and_resume_split_the_emission_stream_exactly() {
        use cfp_data::MineProgress;
        use cfp_fault::CancelToken;

        // A sink that requests cancellation once `after` top-level items
        // have completed — the in-process analogue of SIGTERM.
        struct CancellingSink {
            inner: CollectSink,
            cancel: CancelToken,
            after: u64,
            watermark: u64,
        }
        impl ItemsetSink for CancellingSink {
            fn emit(&mut self, itemset: &[Item], support: u64) {
                self.inner.emit(itemset, support);
            }
            fn progress(&mut self, p: MineProgress<'_>) -> Result<(), CfpError> {
                if let MineProgress::Items { done } = p {
                    self.watermark = done;
                    if done >= self.after {
                        self.cancel.cancel();
                    }
                }
                Ok(())
            }
        }

        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut db = TransactionDb::new();
        for _ in 0..60 {
            let t: Vec<Item> = (0..12).filter(|_| rng.gen_bool(0.5)).collect();
            db.push(&t);
        }
        let miner = CfpGrowthMiner::new();
        let mut full = CollectSink::new();
        miner.try_mine(&db, 3, &mut full).unwrap();

        for after in [1u64, 3, 7] {
            let cancel = CancelToken::new();
            let mut first = CancellingSink {
                inner: CollectSink::new(),
                cancel: cancel.clone(),
                after,
                watermark: 0,
            };
            let opts = MineOpts { cancel: Some(cancel), ..Default::default() };
            let err = miner.try_mine_with(&db, 3, &mut first, &opts).expect_err("cancelled");
            assert_eq!(err.exit_code(), 8, "{err}");
            assert_eq!(first.watermark, after, "stops at the first boundary past the trigger");

            let opts = MineOpts { resume_skip: first.watermark, ..Default::default() };
            let mut second = CollectSink::new();
            miner.try_mine_with(&db, 3, &mut second, &opts).unwrap();

            let mut joined = first.inner.itemsets;
            joined.extend(second.itemsets);
            assert_eq!(
                joined, full.itemsets,
                "pre-cancel + post-resume emission must equal the uninterrupted run (after={after})"
            );
        }
    }

    #[test]
    fn deep_recursion_on_dense_block() {
        // A dense block: every transaction holds most of 14 items, so
        // conditional trees nest deeply.
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut db = TransactionDb::new();
        for _ in 0..50 {
            let t: Vec<Item> = (0..14).filter(|_| rng.gen_bool(0.8)).collect();
            db.push(&t);
        }
        let got = mine_collect(&db, 10, true);
        assert_eq!(got, fp_collect(&db, 10));
        assert!(!got.is_empty());
    }
}
