//! Assembles the `cfp-memstat/1` space-domain report.
//!
//! The data model lives in [`cfp_trace::memstat`] (so the trace crate
//! can fold summaries into `cfp-profile/2` documents without depending
//! on the mining layers); *assembling* a report needs the pool, the
//! tree, the array, and the analytics passes at once, which only this
//! crate can see. [`collect_memstat`] runs a post-mining analytics pass:
//! it rebuilds the initial CFP-tree and CFP-array from the database —
//! charging the same [`BudgetPool`] the mining run used, so the audit
//! reconciles against live accounting — and measures both structures
//! while they are alive.
//!
//! The FP-tree baseline figures come from a different crate
//! (`cfp-fptree` is not a dependency of `cfp-core`), so callers pass
//! them in as a plain [`FpBaselineBytes`] value; the CLI and bench
//! layers compute it with `cfp_fptree::analysis::baselines`.

use crate::growth::{try_build_tree_with, ArrayCharge};
use cfp_array::convert;
use cfp_data::{CfpError, TransactionDb};
use cfp_memman::{ArenaOptions, BudgetPool, Component};
use cfp_metrics::{summarize_linear, summarize_log2, HeapSize, Log2Summary};
use cfp_trace::memstat::{
    rss_bytes, Attribution, Audit, ComponentRow, CompressionRow, DistRow, MemStatReport,
    SavingsRow, StructureReport,
};

/// Arena capacity slack the audit tolerates: the backing `Vec` grows
/// geometrically (at most doubling), so OS-reserved capacity may exceed
/// carved bytes by a factor of [`SLACK_FACTOR`], plus [`SLACK_FLOOR`]
/// absolute bytes for tiny arenas whose first allocation dominates.
pub const SLACK_FACTOR: u64 = 2;
/// Absolute slack floor in bytes (see [`SLACK_FACTOR`]).
pub const SLACK_FLOOR: u64 = 4096;

/// FP-tree baseline byte figures for the compression table, computed by
/// the caller from `cfp_fptree::analysis::baselines` on the same counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpBaselineBytes {
    /// Logical FP-tree nodes.
    pub nodes: u64,
    /// Exact bytes of the in-memory FP-tree layout (28-byte nodes).
    pub in_memory_bytes: u64,
    /// The paper's §4.2 baseline convention: 40 bytes per node.
    pub paper_bytes: u64,
    /// Estimated bytes of the nonordfp array representation.
    pub nonordfp_bytes: u64,
}

/// Run identification carried into the report header.
#[derive(Clone, Copy, Debug)]
pub struct MemStatRun<'a> {
    /// Dataset path or profile name.
    pub dataset: &'a str,
    /// Algorithm name as selected by the caller.
    pub algorithm: &'a str,
    /// Worker threads (1 = sequential).
    pub threads: u64,
}

/// Builds the full `cfp-memstat/1` report for `db` at `min_support`.
///
/// `pool` should be the pool the mining run charged (its per-component
/// peaks and pool peak then describe the real run); a fresh unlimited
/// pool also works and describes the analytics pass alone, which is what
/// `cfp-repro inspect` does. The analytics pass is observational: it
/// never affects mining output (the pool charge is metered but the pool
/// is the caller's — an unlimited pool admits everything).
pub fn collect_memstat(
    db: &TransactionDb,
    min_support: u64,
    run: &MemStatRun<'_>,
    pool: &BudgetPool,
    baselines: Option<FpBaselineBytes>,
) -> Result<MemStatReport, CfpError> {
    // Analytics pass: rebuild the initial structures so they can be
    // measured while alive. Charged to the same components as the real
    // run, so the audit below exercises live accounting.
    let (_recoder, tree) = try_build_tree_with(
        db,
        min_support,
        ArenaOptions {
            pool: Some(pool.clone()),
            component: Component::BuildTree,
            ..Default::default()
        },
    )?;
    let tr = cfp_tree::analysis::tree_report(&tree);
    let array = convert(&tree);
    let _charge = ArrayCharge::new(Some(pool.clone()), array.heap_bytes());
    let ar = cfp_array::stats::array_report(&array);

    // Audit while the tree arena and the array charge are both live.
    let snap = pool.snapshot();
    let arena_carved = tree.arena().footprint().saturating_sub(1);
    let arena_reserved = tree.arena().reserved();
    let audit = Audit {
        components_total: snap.components_total(),
        accounted: snap.accounted(),
        reconciled: snap.components_total() == snap.accounted(),
        arena_carved,
        arena_reserved,
        reserved_slack: arena_reserved as f64 / arena_carved.max(1) as f64,
        within_slack: arena_reserved <= SLACK_FACTOR * arena_carved + SLACK_FLOOR,
        rss_bytes: rss_bytes(),
    };
    let attribution = Attribution {
        limit: (snap.limit != u64::MAX).then_some(snap.limit),
        pool_used: snap.used,
        pool_peak: snap.peak,
        external_used: snap.external_used,
        components: snap
            .components
            .iter()
            .map(|&(name, live, peak)| ComponentRow { component: name.into(), live, peak })
            .collect(),
    };

    let transactions = db.len() as u64;
    let per_txn = |bytes: u64| -> f64 {
        if transactions == 0 {
            0.0
        } else {
            bytes as f64 / transactions as f64
        }
    };

    // Per-structure breakdowns. Histogram buckets flatten into detail
    // rows (non-empty buckets only) so distributions survive the JSON
    // round trip without a dedicated schema section per structure.
    let mut tree_detail: Vec<(String, u64)> = vec![
        ("standard_nodes".into(), tr.breakdown.standard),
        ("chain_nodes".into(), tr.breakdown.chain_nodes),
        ("chain_entries".into(), tr.breakdown.chain_entries),
        ("embedded_leaves".into(), tr.breakdown.embedded),
        ("header_bytes".into(), tr.header_bytes),
        ("payload_bytes".into(), tr.field_bytes),
        ("stored_ptr_bytes".into(), 5 * tr.stored_ptr_fields),
        ("encoded_bytes".into(), tr.encoded_bytes),
        ("chunk_rounding_bytes".into(), tr.chunk_rounding),
        ("root_fanout".into(), tr.root_fanout),
    ];
    for (i, &n) in tr.ptr_mask_hist.iter().enumerate() {
        if n > 0 {
            tree_detail.push((format!("ptr_mask_{i}"), n));
        }
    }
    for (len, &n) in tr.chain_len_hist.iter().enumerate() {
        if n > 0 {
            tree_detail.push((format!("chain_len_{len}"), n));
        }
    }
    for (fanout, &n) in tr.fanout_hist.iter().enumerate() {
        if n > 0 {
            let last = tr.fanout_hist.len() - 1;
            let key = if fanout == last {
                format!("fanout_{fanout}plus")
            } else {
                format!("fanout_{fanout}")
            };
            tree_detail.push((key, n));
        }
    }
    let structures = vec![
        StructureReport {
            name: "cfp-tree".into(),
            logical_nodes: tr.logical_nodes(),
            bytes: tr.arena_used,
            bytes_per_node: tr.bytes_per_node(),
            bytes_per_transaction: per_txn(tr.arena_used),
            detail: tree_detail,
        },
        StructureReport {
            name: "cfp-array".into(),
            logical_nodes: ar.num_nodes,
            bytes: ar.total_bytes,
            bytes_per_node: ar.bytes_per_node(),
            bytes_per_transaction: per_txn(ar.total_bytes),
            detail: vec![
                ("data_bytes".into(), ar.data_bytes),
                ("index_bytes".into(), ar.index_bytes),
                ("ditem_bytes".into(), ar.fields.ditem),
                ("dpos_bytes".into(), ar.fields.dpos),
                ("count_bytes".into(), ar.fields.count),
            ],
        },
    ];

    // Compression table: every representation of the same counts,
    // relative to the in-memory FP-tree baseline.
    let mut compression = Vec::new();
    if let Some(fp) = baselines {
        let ratio = |bytes: u64| -> f64 {
            if fp.in_memory_bytes == 0 {
                0.0
            } else {
                bytes as f64 / fp.in_memory_bytes as f64
            }
        };
        compression.push(CompressionRow {
            representation: "fp-tree".into(),
            bytes: fp.in_memory_bytes,
            ratio_vs_fptree: ratio(fp.in_memory_bytes),
        });
        compression.push(CompressionRow {
            representation: "fp-tree-paper-40b".into(),
            bytes: fp.paper_bytes,
            ratio_vs_fptree: ratio(fp.paper_bytes),
        });
        compression.push(CompressionRow {
            representation: "nonordfp-est".into(),
            bytes: fp.nonordfp_bytes,
            ratio_vs_fptree: ratio(fp.nonordfp_bytes),
        });
        compression.push(CompressionRow {
            representation: "cfp-tree".into(),
            bytes: tr.arena_used,
            ratio_vs_fptree: ratio(tr.arena_used),
        });
        compression.push(CompressionRow {
            representation: "cfp-array".into(),
            bytes: ar.total_bytes,
            ratio_vs_fptree: ratio(ar.total_bytes),
        });
    }

    // The exact-sum savings ladder (see cfp_tree::analysis): positive
    // rows are bytes a trick saved, negative rows are encoding
    // overheads, and the residual is pinned to zero by construction.
    // Chain/embedding memos overlap the suppression rows and sit
    // outside the sum; the array varint row belongs to the CFP-array.
    let savings = vec![
        SavingsRow { name: "naive-baseline".into(), bytes: tr.naive_bytes as i64 },
        SavingsRow { name: "ptr40".into(), bytes: tr.ptr40_saved as i64 },
        SavingsRow { name: "null-suppression".into(), bytes: tr.null_suppression_saved as i64 },
        SavingsRow { name: "zero-suppression".into(), bytes: tr.zero_suppression_saved as i64 },
        SavingsRow { name: "header-overhead".into(), bytes: -(tr.header_bytes as i64) },
        SavingsRow { name: "chunk-rounding-overhead".into(), bytes: -(tr.chunk_rounding as i64) },
        SavingsRow { name: "root-slot-overhead".into(), bytes: -(cfp_memman::MIN_CHUNK as i64) },
        SavingsRow { name: "identity-residual".into(), bytes: tr.identity_residual() },
        SavingsRow { name: "chain-packing-memo".into(), bytes: tr.chain_memo_saved as i64 },
        SavingsRow { name: "embedding-memo".into(), bytes: tr.embed_memo_saved as i64 },
        SavingsRow { name: "array-varint".into(), bytes: ar.varint_saved as i64 },
    ];

    // Mine-phase distributions from the trace registry (empty when the
    // run was not traced — `inspect` without a mining run reports zero
    // counts, which consumers treat as "not recorded").
    let dist = |name: &str, s: Log2Summary| DistRow {
        name: name.into(),
        count: s.count,
        p50: s.p50,
        p95: s.p95,
        max: s.max,
    };
    let tc = &cfp_trace::counters::CORE_COND_TREE_BYTES;
    let distributions = vec![
        dist("cond_tree_bytes", summarize_log2(&tc.snapshot())),
        dist("recursion_depth", summarize_linear(&cfp_trace::counters::CORE_DEPTH.snapshot())),
        dist(
            "pattern_base_size",
            summarize_log2(&cfp_trace::counters::CORE_PATTERN_BASE_LOG2.snapshot()),
        ),
    ];

    Ok(MemStatReport {
        dataset: run.dataset.to_string(),
        transactions,
        support: min_support,
        algorithm: run.algorithm.to_string(),
        threads: run.threads,
        attribution,
        audit,
        structures,
        compression,
        savings,
        distributions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::profiles;

    fn fp_baselines(db: &TransactionDb, min_support: u64) -> FpBaselineBytes {
        let recoder = cfp_data::ItemRecoder::scan(db, min_support);
        let fp = cfp_fptree::FpTree::from_db(db, &recoder);
        let b = cfp_fptree::analysis::baselines(&fp);
        FpBaselineBytes {
            nodes: b.nodes,
            in_memory_bytes: b.in_memory_bytes,
            paper_bytes: b.paper_bytes,
            nonordfp_bytes: b.nonordfp_bytes,
        }
    }

    #[test]
    fn report_audit_reconciles_and_components_attribute() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![1, 2, 4],
            vec![1, 2],
            vec![1, 3],
        ]);
        let pool = BudgetPool::unlimited();
        let run = MemStatRun { dataset: "inline", algorithm: "cfp", threads: 1 };
        let report = collect_memstat(&db, 2, &run, &pool, None).unwrap();
        assert!(report.audit.reconciled, "{:?}", report.audit);
        assert!(report.audit.within_slack, "{:?}", report.audit);
        assert_eq!(report.audit.components_total, report.audit.accounted);
        // The analytics pass is over: nothing is live any more, but the
        // build-tree component recorded its peak.
        assert_eq!(pool.used(), 0);
        assert!(pool.component_peak(Component::BuildTree) > 0);
        assert!(pool.component_peak(Component::CondArrays) > 0);
        // The savings ladder is exact.
        let residual = report.savings.iter().find(|r| r.name == "identity-residual").unwrap().bytes;
        assert_eq!(residual, 0);
        // And the document round-trips.
        let text = report.to_json().to_pretty();
        let back = MemStatReport::from_json(&cfp_trace::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn compression_table_beats_the_fptree_baseline_on_a_committed_dataset() {
        // The paper-shaped claim, reproduced on a committed dataset
        // profile rather than asserted: the CFP-tree is strictly smaller
        // than the FP-tree built from the same counts.
        let profile = profiles::by_name("retail-like").unwrap();
        let db = profile.generate();
        let min_support = profile.absolute_support(&db, 0);
        let pool = BudgetPool::unlimited();
        let run = MemStatRun { dataset: "retail-like", algorithm: "cfp", threads: 1 };
        let baselines = fp_baselines(&db, min_support);
        let report = collect_memstat(&db, min_support, &run, &pool, Some(baselines)).unwrap();
        let row = |name: &str| {
            report.compression.iter().find(|r| r.representation == name).unwrap_or_else(|| {
                panic!("missing compression row {name}: {:?}", report.compression)
            })
        };
        let fp = row("fp-tree");
        let cfp = row("cfp-tree");
        assert!(fp.bytes > 0 && cfp.bytes > 0);
        assert!(cfp.bytes < fp.bytes, "cfp {} vs fp {}", cfp.bytes, fp.bytes);
        assert!(cfp.ratio_vs_fptree < 1.0);
        assert!((fp.ratio_vs_fptree - 1.0).abs() < 1e-12);
        // The savings are itemized, not asserted: the positive ladder
        // rows sum (net of overheads) to exactly the naive-to-arena gap.
        let s = |name: &str| report.savings.iter().find(|r| r.name == name).unwrap().bytes;
        assert!(s("ptr40") > 0 && s("null-suppression") > 0 && s("zero-suppression") > 0);
        assert_eq!(s("identity-residual"), 0);
    }

    #[test]
    fn empty_database_produces_a_reconciled_report() {
        let db = TransactionDb::from_rows::<Vec<u32>>(&[]);
        let pool = BudgetPool::unlimited();
        let run = MemStatRun { dataset: "empty", algorithm: "cfp", threads: 1 };
        let report = collect_memstat(&db, 1, &run, &pool, None).unwrap();
        assert!(report.audit.reconciled);
        assert_eq!(report.transactions, 0);
        let tree = &report.structures[0];
        assert_eq!(tree.logical_nodes, 0);
        assert_eq!(tree.bytes_per_transaction, 0.0);
    }
}
