//! Streaming file-based mining — the paper's actual input pipeline.
//!
//! FP-growth needs exactly two passes over the base data (§2.1); with the
//! asynchronous double-buffered reader of §4.1, neither pass materializes
//! the database in memory. [`mine_file`] runs
//!
//! 1. **pass 1** over the FIMI file, streaming transactions into the
//!    per-item support counts,
//! 2. **pass 2** over the file, recoding each transaction and inserting
//!    it into the CFP-tree,
//!
//! then hands off to the in-memory conversion and mine phases. Peak memory
//! therefore contains the compressed structures plus two fixed-size input
//! buffers — never the raw data, which is how the paper can process 26 GB
//! inputs on a 6 GB machine.

use crate::growth::CfpGrowthMiner;
use cfp_data::count::count_transaction;
use cfp_data::double_buffer::DoubleBufferedReader;
use cfp_data::{ItemRecoder, ItemsetSink, MineStats};
use cfp_metrics::{MemGauge, Stopwatch};
use cfp_tree::CfpTree;
use std::fs::File;
use std::io;
use std::path::Path;

/// Mines a FIMI-format file in two streaming passes.
pub fn mine_file(
    miner: &CfpGrowthMiner,
    path: impl AsRef<Path>,
    min_support: u64,
    sink: &mut dyn ItemsetSink,
) -> io::Result<MineStats> {
    let path = path.as_ref();
    let mut stats = MineStats::default();
    let gauge = MemGauge::new();
    let mut sw = Stopwatch::start();

    // Pass 1: stream the file through the double-buffered reader and
    // count item supports.
    let mut counts: Vec<u64> = Vec::new();
    DoubleBufferedReader::new(File::open(path)?).for_each_transaction(|t| {
        count_transaction(t, &mut counts);
    })?;
    let recoder = ItemRecoder::from_supports(&counts, min_support);
    drop(counts);
    stats.scan_time = sw.lap();

    // Pass 2: stream again, building the CFP-tree.
    let mut tree = CfpTree::new(recoder.num_items());
    let mut buf = Vec::new();
    DoubleBufferedReader::new(File::open(path)?).for_each_transaction(|t| {
        recoder.recode_transaction(t, &mut buf);
        tree.insert(&buf, 1);
    })?;
    stats.build_time = sw.lap();

    miner
        .convert_and_mine(
            &recoder,
            tree,
            min_support,
            sink,
            stats,
            gauge,
            sw,
            &crate::growth::MineOpts::default(),
        )
        .map_err(io::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, Miner};
    use cfp_data::{fimi, TransactionDb};

    fn tmp_file(name: &str, db: &TransactionDb) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cfp_core_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fimi::write_file(db, &path).unwrap();
        path
    }

    #[test]
    fn file_mining_matches_in_memory_mining() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let path = tmp_file("match.dat", &db);
        let miner = CfpGrowthMiner::new();

        let mut file_sink = CollectSink::new();
        let file_stats = mine_file(&miner, &path, 2, &mut file_sink).unwrap();
        let mut mem_sink = CollectSink::new();
        let mem_stats = miner.mine(&db, 2, &mut mem_sink);

        assert_eq!(file_sink.into_sorted(), mem_sink.into_sorted());
        assert_eq!(file_stats.itemsets, mem_stats.itemsets);
        assert_eq!(file_stats.tree_nodes, mem_stats.tree_nodes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_mines_nothing() {
        let path = tmp_file("empty.dat", &TransactionDb::new());
        let mut sink = CollectSink::new();
        let stats = mine_file(&CfpGrowthMiner::new(), &path, 1, &mut sink).unwrap();
        assert_eq!(stats.itemsets, 0);
        assert!(sink.into_sorted().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let mut sink = CollectSink::new();
        let err = mine_file(&CfpGrowthMiner::new(), "/nonexistent/cfp/file.dat", 1, &mut sink);
        assert!(err.is_err());
    }

    #[test]
    fn malformed_file_reports_parse_error() {
        let dir = std::env::temp_dir().join("cfp_core_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dat");
        std::fs::write(&path, "1 2 three\n").unwrap();
        let mut sink = CollectSink::new();
        assert!(mine_file(&CfpGrowthMiner::new(), &path, 1, &mut sink).is_err());
        std::fs::remove_file(&path).ok();
    }
}
