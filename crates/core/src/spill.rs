//! Out-of-core glue: CFP-arrays on spill files.
//!
//! The supervisor's `spill` rung and the conditional-spill hook in
//! [`crate::growth`] both move [`CfpArray`]s through disk using the
//! crash-safe file discipline of [`cfp_data::spill`] and the checksummed
//! on-disk layout of [`CfpArray::write_to`]. This module owns the
//! translation between the two layers: raw [`std::io::Error`]s become
//! structured [`CfpError::Spill`] errors naming the failing operation
//! (`"write"`, `"read"`, or `"map"`) and the file involved, so the CLI
//! can map every injected or real I/O fault to one documented exit code.

use cfp_array::CfpArray;
use cfp_data::spill::{read_back, write_atomic};
use cfp_data::CfpError;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn spill_err(op: &'static str, path: &Path, e: io::Error) -> CfpError {
    CfpError::Spill { op, path: path.display().to_string(), message: e.to_string() }
}

/// Writes `array` to `path` with the atomic write-fsync-rename protocol
/// and returns the file's byte size. Failures (ENOSPC, short writes,
/// injected faults) come back as [`CfpError::Spill`] with `op: "write"`.
pub(crate) fn write_spill_array(path: &Path, array: &CfpArray) -> Result<u64, CfpError> {
    let _t = cfp_trace::hist::timer(&cfp_trace::hist::DATA_SPILL_WRITE_NANOS);
    write_atomic(path, |w| array.write_to(w)).map_err(|e| spill_err("write", path, e))
}

/// Loads a spill file back as a zero-copy [`CfpArray`] view over one
/// shared buffer, returning the array and the buffer's byte size (what
/// the caller attributes to the budget pool as external spill memory).
/// A failing read maps to `op: "read"`; a checksum or schema mismatch in
/// the loaded bytes — a torn or corrupt file — maps to `op: "map"`.
pub(crate) fn load_spill_array(path: &Path) -> Result<(CfpArray, u64), CfpError> {
    let _t = cfp_trace::hist::timer(&cfp_trace::hist::DATA_SPILL_LOAD_NANOS);
    let buf = read_back(path).map_err(|e| spill_err("read", path, e))?;
    let bytes = buf.len() as u64;
    let array = CfpArray::from_bytes(buf).map_err(|e| spill_err("map", path, e))?;
    Ok((array, bytes))
}

/// Conditional-structure spilling, threaded through the mine phase via
/// [`MineOpts`](crate::growth::MineOpts).
///
/// When set, any conditional CFP-array whose data block reaches
/// `threshold` bytes is round-tripped through a spill file: written with
/// the atomic protocol, read back, and replaced by a zero-copy shared
/// view whose data bytes no longer live in pool-metered memory. The
/// supervisor's spill rung arms this so oversized conditional structures
/// follow the same out-of-core path as the partitions themselves.
#[derive(Clone, Debug)]
pub struct CondSpill {
    dir: Arc<cfp_data::spill::SpillDir>,
    threshold: u64,
    seq: Arc<AtomicU64>,
}

impl CondSpill {
    /// Arms conditional spilling into `dir` for arrays of `threshold`
    /// data bytes or more.
    pub fn new(dir: Arc<cfp_data::spill::SpillDir>, threshold: u64) -> Self {
        CondSpill { dir, threshold, seq: Arc::new(AtomicU64::new(0)) }
    }

    /// The spill threshold in data bytes.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Round-trips `array` through a uniquely-named spill file and
    /// returns the shared-buffer view. The file is removed as soon as
    /// the view holds the bytes — conditional spills are scratch state,
    /// and the checksum has already proven the round trip intact.
    pub(crate) fn round_trip(&self, array: &CfpArray) -> Result<CfpArray, CfpError> {
        let name = format!("cond-{}.cfpa", self.seq.fetch_add(1, Ordering::Relaxed));
        let path = self.dir.file(&name);
        write_spill_array(&path, array)?;
        let loaded = load_spill_array(&path);
        self.dir.remove(&name);
        let (view, _) = loaded?;
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::spill::SpillDir;
    use cfp_data::TransactionDb;

    fn sample_array() -> CfpArray {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let (_, tree) = crate::growth::try_build_tree(&db, 2, None).unwrap();
        cfp_array::convert(&tree)
    }

    #[test]
    fn write_then_load_round_trips_as_a_shared_view() {
        let parent = std::env::temp_dir().join(format!("cfp-core-spill-{}", std::process::id()));
        let dir = SpillDir::create(&parent).unwrap();
        let array = sample_array();
        let path = dir.file("p0.cfpa");
        let written = write_spill_array(&path, &array).unwrap();
        let (view, bytes) = load_spill_array(&path).unwrap();
        assert_eq!(written, bytes);
        assert!(view.is_shared());
        assert_eq!(view.num_items(), array.num_items());
        assert_eq!(view.data(), array.data());
        drop(dir);
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn missing_file_maps_to_a_structured_spill_error() {
        let path = std::env::temp_dir().join("cfp-core-spill-definitely-missing.cfpa");
        let err = load_spill_array(&path).unwrap_err();
        assert_eq!(err.exit_code(), 7);
        match err {
            CfpError::Spill { op, path: p, .. } => {
                assert_eq!(op, "read");
                assert!(p.contains("definitely-missing"));
            }
            other => panic!("expected Spill, got {other}"),
        }
    }

    #[test]
    fn corrupt_file_maps_to_a_map_error() {
        let parent = std::env::temp_dir().join(format!("cfp-core-spill-c-{}", std::process::id()));
        let dir = SpillDir::create(&parent).unwrap();
        let array = sample_array();
        let path = dir.file("p0.cfpa");
        write_spill_array(&path, &array).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_spill_array(&path).unwrap_err();
        match err {
            CfpError::Spill { op, .. } => assert_eq!(op, "map"),
            other => panic!("expected Spill, got {other}"),
        }
        drop(dir);
        let _ = std::fs::remove_dir_all(&parent);
    }

    #[test]
    fn cond_spill_round_trip_removes_the_file_and_shares_the_buffer() {
        let parent = std::env::temp_dir().join(format!("cfp-core-spill-r-{}", std::process::id()));
        let dir = Arc::new(SpillDir::create(&parent).unwrap());
        let cs = CondSpill::new(Arc::clone(&dir), 1);
        let array = sample_array();
        let view = cs.round_trip(&array).unwrap();
        assert!(view.is_shared());
        assert_eq!(view.data(), array.data());
        assert_eq!(
            std::fs::read_dir(dir.path()).unwrap().count(),
            0,
            "the round-trip file must not outlive the load"
        );
        drop(view);
        drop(cs);
        drop(dir);
        let _ = std::fs::remove_dir_all(&parent);
    }
}
