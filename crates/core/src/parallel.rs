//! Parallel CFP-growth.
//!
//! The mine phase of FP-growth decomposes naturally: the recursion rooted
//! at each first-level item touches only that item's subarray and the
//! subarrays of more frequent items — all reads. The paper's related-work
//! section (§5, class 4) surveys parallel and distributed FP-growth built
//! on exactly this independence; here we exploit it with worker threads
//! over one shared, immutable initial [`CfpArray`].
//!
//! The scan, build, and conversion phases stay sequential (they are a
//! small fraction of the runtime at low support). First-level items are
//! dealt round-robin to `threads` workers, interleaving cheap (frequent)
//! and expensive (rare, deep-recursion) items. Workers stream result
//! batches over a channel to the caller's sink, so itemsets are emitted
//! in nondeterministic order but without buffering the whole result.
//!
//! Two robustness mechanisms live here:
//!
//! - **One budget, many arenas.** `mem_budget` is enforced by a single
//!   shared [`BudgetPool`] charged by the initial tree *and* every
//!   worker's conditional trees — `t` workers cannot oversubscribe the
//!   limit `t`-fold. Exhaustion in any worker poisons the run and comes
//!   back as a structured [`CfpError::MemoryExhausted`].
//! - **A watchdog.** With `worker_timeout` set, each worker ticks a
//!   heartbeat counter per first-level item; if no result batch arrives
//!   and no unfinished worker's heartbeat advances for the full timeout,
//!   the run is poisoned and fails with [`CfpError::WorkerTimeout`]
//!   instead of hanging forever. Threads are spawned (not scoped) over
//!   `Arc`-shared structures so a truly wedged worker can be abandoned.
//!
//! `peak_bytes` is an upper-bound estimate: the shared structures plus
//! the sum of the workers' conditional-structure peaks (as if all workers
//! hit their individual peaks simultaneously).

use crate::growth::{mine_one_item, try_build_tree_with, CfpGrowthMiner, MineOpts};
use cfp_array::convert;
use cfp_data::{CfpError, Item, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_memman::{ArenaOptions, BudgetPool};
use cfp_metrics::{HeapSize, Stopwatch};
use cfp_trace::{span, Phase};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Multi-threaded CFP-growth over a shared initial CFP-array.
#[derive(Clone, Debug)]
pub struct ParallelCfpGrowthMiner {
    /// Number of worker threads (0 or 1 falls back to sequential).
    pub threads: usize,
    /// Enumerate single-path structures directly instead of recursing.
    pub single_path_opt: bool,
    /// Byte cap on the whole run, enforced by one [`BudgetPool`] shared
    /// between the initial tree's arena and every worker's conditional
    /// trees. Exceeding it surfaces as [`CfpError::MemoryExhausted`]
    /// from [`Miner::try_mine`] (or a panic from the infallible
    /// [`Miner::mine`]).
    pub mem_budget: Option<u64>,
    /// Pre-built pool to charge instead of a fresh one from
    /// `mem_budget`; lets the run supervisor read the pool's peak and
    /// compaction gauges after the run.
    pub pool: Option<BudgetPool>,
    /// Watchdog limit: fail with [`CfpError::WorkerTimeout`] when no
    /// worker makes progress for this long. `None` disables it.
    pub worker_timeout: Option<Duration>,
    /// Compact arenas and retry once before reporting exhaustion.
    pub compact_on_pressure: bool,
}

impl ParallelCfpGrowthMiner {
    /// A parallel miner with the given worker count.
    pub fn new(threads: usize) -> Self {
        ParallelCfpGrowthMiner {
            threads,
            single_path_opt: true,
            mem_budget: None,
            pool: None,
            worker_timeout: None,
            compact_on_pressure: false,
        }
    }

    fn effective_pool(&self) -> Option<BudgetPool> {
        self.pool.clone().or_else(|| self.mem_budget.map(BudgetPool::new))
    }
}

/// Batches itemsets into a channel (per worker).
struct BatchSink {
    tx: mpsc::Sender<Vec<(Vec<Item>, u64)>>,
    buf: Vec<(Vec<Item>, u64)>,
}

const BATCH: usize = 1024;

impl BatchSink {
    /// Sends the buffered batch; `false` means the receiver is gone (the
    /// caller panicked or bailed) and the batch was dropped.
    fn flush(&mut self) -> bool {
        if self.buf.is_empty() {
            return true;
        }
        self.tx.send(std::mem::take(&mut self.buf)).is_ok()
    }
}

impl ItemsetSink for BatchSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.buf.push((itemset.to_vec(), support));
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }
}

impl Miner for ParallelCfpGrowthMiner {
    fn name(&self) -> &'static str {
        "cfp-growth-parallel"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        self.try_mine(db, min_support, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible mine with worker containment: a panic inside any worker
    /// is caught at the thread boundary ([`catch_unwind`]), a shared
    /// poison flag cancels the remaining workers at their next work item,
    /// and the first failure comes back as [`CfpError::WorkerPanic`],
    /// [`CfpError::MemoryExhausted`], or [`CfpError::WorkerTimeout`] —
    /// the process and the caller's sink survive (the sink may have
    /// received a partial result stream).
    fn try_mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> Result<MineStats, CfpError> {
        let pool = self.effective_pool();
        if self.threads <= 1 {
            return CfpGrowthMiner { single_path_opt: self.single_path_opt, mem_budget: None }
                .try_mine_with(
                    db,
                    min_support,
                    sink,
                    &MineOpts { pool, compact_on_pressure: self.compact_on_pressure },
                );
        }
        let mut stats = MineStats::default();
        let mut sw = Stopwatch::start();

        let (recoder, tree) = {
            let _s = span(Phase::Build);
            try_build_tree_with(
                db,
                min_support,
                ArenaOptions {
                    budget: None,
                    pool: pool.clone(),
                    compact_on_pressure: self.compact_on_pressure,
                },
            )?
        };
        stats.scan_time = std::time::Duration::ZERO; // folded into build
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes();
        let tree_bytes = tree.heap_bytes();

        let array = {
            let _s = span(Phase::Convert);
            convert(&tree)
        };
        drop(tree);
        stats.convert_time = sw.lap();

        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        let n = recoder.num_items() as u32;
        let threads = self.threads.min(n.max(1) as usize);
        let single_path_opt = self.single_path_opt;
        let opts = MineOpts { pool: pool.clone(), compact_on_pressure: self.compact_on_pressure };

        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_WORKERS.record(threads as u64);
        }
        let array = Arc::new(array);
        let globals = Arc::new(globals);
        let poison = Arc::new(AtomicBool::new(false));
        let heartbeats: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let (tx, rx) = mpsc::channel::<Vec<(Vec<Item>, u64)>>();
        let mut worker_peaks = vec![0u64; threads];
        let mut first_error: Option<CfpError> = None;

        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let tx = tx.clone();
                let array = Arc::clone(&array);
                let globals = Arc::clone(&globals);
                let poison = Arc::clone(&poison);
                let heartbeats = Arc::clone(&heartbeats);
                let opts = opts.clone();
                std::thread::spawn(move || -> Result<u64, CfpError> {
                    // Each worker's mining wall time accumulates into
                    // the mine phase (span count = worker count).
                    let _s = span(Phase::Mine);
                    let mut sink = BatchSink { tx, buf: Vec::with_capacity(BATCH) };
                    let mut peak = 0u64;
                    let mut item = n as i64 - 1 - w as i64;
                    // Round-robin from least to most frequent.
                    while item >= 0 {
                        // A failed sibling poisons the run; stop at the
                        // next work item instead of mining into the void.
                        if poison.load(Ordering::Relaxed) {
                            break;
                        }
                        // The watchdog counts a worker as live while its
                        // heartbeat advances between first-level items.
                        heartbeats[w].fetch_add(1, Ordering::Relaxed);
                        if cfp_trace::enabled() {
                            cfp_trace::counters::CORE_WORKER_HEARTBEATS.inc();
                        }
                        if cfp_fault::should_fail("core.worker.stall") {
                            // Injected hang: hold the heartbeat still until
                            // the watchdog poisons the run, then exit.
                            while !poison.load(Ordering::Relaxed) {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            break;
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if cfp_fault::should_fail("core.worker") {
                                panic!("injected worker fault (failpoint core.worker)");
                            }
                            mine_one_item(
                                &array,
                                item as u32,
                                &globals,
                                min_support,
                                single_path_opt,
                                &mut sink,
                                &opts,
                            )
                        }));
                        match result {
                            Ok(Ok((_, p))) => peak = peak.max(p),
                            Ok(Err(e)) => {
                                poison.store(true, Ordering::Relaxed);
                                return Err(e);
                            }
                            Err(payload) => {
                                poison.store(true, Ordering::Relaxed);
                                if cfp_trace::enabled() {
                                    cfp_trace::counters::CORE_WORKER_PANICS.inc();
                                }
                                return Err(CfpError::WorkerPanic {
                                    worker: w,
                                    message: panic_message(&*payload),
                                });
                            }
                        }
                        item -= threads as i64;
                    }
                    if !sink.flush() && !poison.load(Ordering::Relaxed) {
                        return Err(CfpError::WorkerPanic {
                            worker: w,
                            message: "result channel disconnected".to_string(),
                        });
                    }
                    Ok(peak)
                })
            })
            .collect();
        drop(tx);

        // Drain results on the caller's thread while workers run. With a
        // worker timeout, poll with `recv_timeout` and watch the
        // heartbeats of unfinished workers; a window with neither a batch
        // nor a heartbeat tick is a stall.
        let mut timed_out = false;
        match self.worker_timeout {
            None => {
                while let Ok(batch) = rx.recv() {
                    for (itemset, support) in batch {
                        sink.emit(&itemset, support);
                        stats.itemsets += 1;
                    }
                }
            }
            Some(limit) => {
                let tick = (limit / 4).max(Duration::from_millis(5)).min(limit);
                let mut last_beats: Vec<u64> =
                    heartbeats.iter().map(|h| h.load(Ordering::Relaxed)).collect();
                let mut waited = Duration::ZERO;
                loop {
                    match rx.recv_timeout(tick) {
                        Ok(batch) => {
                            waited = Duration::ZERO;
                            for (itemset, support) in batch {
                                sink.emit(&itemset, support);
                                stats.itemsets += 1;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            let beats: Vec<u64> =
                                heartbeats.iter().map(|h| h.load(Ordering::Relaxed)).collect();
                            let advanced =
                                beats.iter().zip(&last_beats).any(|(now, before)| now != before);
                            if advanced {
                                last_beats = beats;
                                waited = Duration::ZERO;
                                continue;
                            }
                            waited += tick;
                            if waited < limit {
                                continue;
                            }
                            // Stall: no batch, no heartbeat, full window.
                            // Blame the first unfinished worker.
                            let stalled =
                                handles.iter().position(|h| !h.is_finished()).unwrap_or_default();
                            poison.store(true, Ordering::Relaxed);
                            if cfp_trace::enabled() {
                                cfp_trace::counters::CORE_WORKER_STALLS.inc();
                            }
                            first_error = Some(CfpError::WorkerTimeout {
                                worker: stalled,
                                waited_ms: waited.as_millis() as u64,
                            });
                            timed_out = true;
                            break;
                        }
                    }
                }
                // Drain whatever the cancelled workers already sent so
                // they can finish their final flush and exit.
                while let Ok(batch) = rx.try_recv() {
                    if !timed_out {
                        for (itemset, support) in batch {
                            sink.emit(&itemset, support);
                            stats.itemsets += 1;
                        }
                    }
                }
            }
        }

        for (w, h) in handles.into_iter().enumerate() {
            if timed_out {
                // Give cancelled workers a short grace to observe the
                // poison flag; abandon any that stay wedged (they hold
                // only Arc'd shared state, which outlives the run).
                let mut grace = 50;
                while !h.is_finished() && grace > 0 {
                    std::thread::sleep(Duration::from_millis(2));
                    grace -= 1;
                }
                if !h.is_finished() {
                    drop(h);
                    continue;
                }
            }
            // join() only errors on a panic that escaped catch_unwind
            // (e.g. inside BatchSink::flush); fold it into the same
            // structured error instead of re-panicking.
            let joined = h.join().unwrap_or_else(|payload| {
                poison.store(true, Ordering::Relaxed);
                Err(CfpError::WorkerPanic { worker: w, message: panic_message(&*payload) })
            });
            match joined {
                Ok(peak) => worker_peaks[w] = peak,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        stats.mine_time = sw.lap();

        // Upper-bound estimate: shared structures plus all worker peaks.
        stats.peak_bytes = tree_bytes.max(array.heap_bytes()) + worker_peaks.iter().sum::<u64>();
        if let Some(p) = &pool {
            stats.peak_bytes = stats.peak_bytes.max(p.peak());
        }
        stats.avg_bytes = stats.peak_bytes;
        stats.worker_peaks = worker_peaks;
        Ok(stats)
    }
}

/// Renders a caught panic payload as a diagnostic string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, CountingSink};
    use cfp_data::profiles;

    fn sorted(miner: &dyn Miner, db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        miner.mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn parallel_matches_sequential_on_textbook_example() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let seq = sorted(&CfpGrowthMiner::new(), &db, 2);
        for threads in [2, 3, 8] {
            assert_eq!(
                sorted(&ParallelCfpGrowthMiner::new(threads), &db, 2),
                seq,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_profile() {
        let p = profiles::by_name("retail-like").unwrap();
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let mut seq = CountingSink::new();
        CfpGrowthMiner::new().mine(&db, minsup, &mut seq);
        let mut par = CountingSink::new();
        let stats = ParallelCfpGrowthMiner::new(4).mine(&db, minsup, &mut par);
        assert_eq!(
            (seq.count, seq.support_sum, seq.item_sum),
            (par.count, par.support_sum, par.item_sum)
        );
        assert_eq!(stats.itemsets, par.count);
        assert!(stats.peak_bytes > 0);
    }

    #[test]
    fn one_thread_falls_back_to_sequential() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1, 2], vec![2, 3]]);
        let a = sorted(&ParallelCfpGrowthMiner::new(1), &db, 1);
        let b = sorted(&CfpGrowthMiner::new(), &db, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1]]);
        let got = sorted(&ParallelCfpGrowthMiner::new(64), &db, 1);
        assert_eq!(got, sorted(&CfpGrowthMiner::new(), &db, 1));
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::new();
        let mut sink = CollectSink::new();
        let stats = ParallelCfpGrowthMiner::new(4).mine(&db, 1, &mut sink);
        assert_eq!(stats.itemsets, 0);
    }

    #[test]
    fn budget_is_one_shared_pool_not_per_worker_copies() {
        // The regression this guards: `mem_budget` used to cap only the
        // initial build, leaving every worker's conditional trees
        // unaccounted (t workers could oversubscribe the limit t-fold).
        // With the shared pool, the initial tree AND every conditional
        // tree of every worker reserve from one limit. The cumulative
        // reservation gauge makes that observable deterministically:
        // it must exceed the build charge alone.
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut db = TransactionDb::new();
        for _ in 0..120 {
            let t: Vec<Item> = (0..16).filter(|_| rng.gen_bool(0.7)).collect();
            db.push(&t);
        }
        let (_, tree) = crate::growth::try_build_tree(&db, 1, None).expect("uncapped build");
        let build_charge = tree.arena_footprint() - 1; // offset 0 is the null byte
        drop(tree);

        let pool = BudgetPool::new(1 << 30);
        let miner =
            ParallelCfpGrowthMiner { pool: Some(pool.clone()), ..ParallelCfpGrowthMiner::new(4) };
        let mut a = CollectSink::new();
        miner.try_mine(&db, 1, &mut a).expect("generous pool");
        let mut b = CollectSink::new();
        CfpGrowthMiner::new().mine(&db, 1, &mut b);
        assert_eq!(a.into_sorted(), b.into_sorted());

        assert!(
            pool.reserved_total() > build_charge,
            "conditional trees must charge the shared pool (total {} vs build {build_charge})",
            pool.reserved_total()
        );
        assert_eq!(pool.used(), 0, "every arena must release its reservation on drop");
        assert!(pool.peak() >= build_charge);
        assert!(pool.peak() <= pool.limit());
    }

    #[test]
    fn watchdog_is_quiet_on_healthy_runs() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![1, 2, 4],
            vec![1, 2],
            vec![1, 3],
        ]);
        let miner = ParallelCfpGrowthMiner {
            worker_timeout: Some(Duration::from_secs(30)),
            ..ParallelCfpGrowthMiner::new(3)
        };
        let mut sink = CollectSink::new();
        miner.try_mine(&db, 1, &mut sink).expect("healthy run must not time out");
        assert_eq!(sink.into_sorted(), sorted(&CfpGrowthMiner::new(), &db, 1));
    }
}
