//! Parallel CFP-growth.
//!
//! The mine phase of FP-growth decomposes naturally: the recursion rooted
//! at each first-level item touches only that item's subarray and the
//! subarrays of more frequent items — all reads. The paper's related-work
//! section (§5, class 4) surveys parallel and distributed FP-growth built
//! on exactly this independence; here we exploit it with scoped threads
//! over one shared, immutable initial [`CfpArray`].
//!
//! The scan, build, and conversion phases stay sequential (they are a
//! small fraction of the runtime at low support). First-level items are
//! dealt round-robin to `threads` workers, interleaving cheap (frequent)
//! and expensive (rare, deep-recursion) items. Workers stream result
//! batches over a channel to the caller's sink, so itemsets are emitted
//! in nondeterministic order but without buffering the whole result.
//!
//! `peak_bytes` is an upper-bound estimate: the shared structures plus
//! the sum of the workers' conditional-structure peaks (as if all workers
//! hit their individual peaks simultaneously).

use crate::growth::{mine_one_item, try_build_tree, CfpGrowthMiner};
use cfp_array::convert;
use cfp_data::{CfpError, Item, ItemsetSink, MineStats, Miner, TransactionDb};
use cfp_metrics::{HeapSize, Stopwatch};
use cfp_trace::{span, Phase};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;

/// Multi-threaded CFP-growth over a shared initial CFP-array.
#[derive(Clone, Debug)]
pub struct ParallelCfpGrowthMiner {
    /// Number of worker threads (0 or 1 falls back to sequential).
    pub threads: usize,
    /// Enumerate single-path structures directly instead of recursing.
    pub single_path_opt: bool,
    /// Byte cap on the initial tree's arena (see
    /// [`CfpGrowthMiner::mem_budget`]).
    pub mem_budget: Option<u64>,
}

impl ParallelCfpGrowthMiner {
    /// A parallel miner with the given worker count.
    pub fn new(threads: usize) -> Self {
        ParallelCfpGrowthMiner { threads, single_path_opt: true, mem_budget: None }
    }
}

/// Batches itemsets into a channel (per worker).
struct BatchSink {
    tx: mpsc::Sender<Vec<(Vec<Item>, u64)>>,
    buf: Vec<(Vec<Item>, u64)>,
}

const BATCH: usize = 1024;

impl BatchSink {
    /// Sends the buffered batch; `false` means the receiver is gone (the
    /// caller panicked or bailed) and the batch was dropped.
    fn flush(&mut self) -> bool {
        if self.buf.is_empty() {
            return true;
        }
        self.tx.send(std::mem::take(&mut self.buf)).is_ok()
    }
}

impl ItemsetSink for BatchSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.buf.push((itemset.to_vec(), support));
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }
}

impl Miner for ParallelCfpGrowthMiner {
    fn name(&self) -> &'static str {
        "cfp-growth-parallel"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        self.try_mine(db, min_support, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible mine with worker containment: a panic inside any worker
    /// is caught at the thread boundary ([`catch_unwind`]), a shared
    /// poison flag cancels the remaining workers at their next work item,
    /// and the first failure comes back as
    /// [`CfpError::WorkerPanic`] — the process and the caller's sink
    /// survive (the sink may have received a partial result stream).
    fn try_mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> Result<MineStats, CfpError> {
        if self.threads <= 1 {
            return CfpGrowthMiner {
                single_path_opt: self.single_path_opt,
                mem_budget: self.mem_budget,
            }
            .try_mine(db, min_support, sink);
        }
        let mut stats = MineStats::default();
        let mut sw = Stopwatch::start();

        let (recoder, tree) = {
            let _s = span(Phase::Build);
            try_build_tree(db, min_support, self.mem_budget)?
        };
        stats.scan_time = std::time::Duration::ZERO; // folded into build
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes();
        let tree_bytes = tree.heap_bytes();

        let array = {
            let _s = span(Phase::Convert);
            convert(&tree)
        };
        drop(tree);
        stats.convert_time = sw.lap();

        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        let n = recoder.num_items() as u32;
        let threads = self.threads.min(n.max(1) as usize);
        let single_path_opt = self.single_path_opt;

        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_WORKERS.record(threads as u64);
        }
        let (tx, rx) = mpsc::channel::<Vec<(Vec<Item>, u64)>>();
        let mut worker_peaks = vec![0u64; threads];
        let poison = AtomicBool::new(false);
        let mut first_error: Option<CfpError> = None;
        std::thread::scope(|scope| {
            let array = &array;
            let globals = &globals;
            let poison = &poison;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let tx = tx.clone();
                    scope.spawn(move || -> Result<u64, CfpError> {
                        // Each worker's mining wall time accumulates into
                        // the mine phase (span count = worker count).
                        let _s = span(Phase::Mine);
                        let mut sink = BatchSink { tx, buf: Vec::with_capacity(BATCH) };
                        let mut peak = 0u64;
                        let mut item = n as i64 - 1 - w as i64;
                        // Round-robin from least to most frequent.
                        while item >= 0 {
                            // A failed sibling poisons the run; stop at the
                            // next work item instead of mining into the void.
                            if poison.load(Ordering::Relaxed) {
                                break;
                            }
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                if cfp_fault::should_fail("core.worker") {
                                    panic!("injected worker fault (failpoint core.worker)");
                                }
                                mine_one_item(
                                    array,
                                    item as u32,
                                    globals,
                                    min_support,
                                    single_path_opt,
                                    &mut sink,
                                )
                            }));
                            match result {
                                Ok((_, p)) => peak = peak.max(p),
                                Err(payload) => {
                                    poison.store(true, Ordering::Relaxed);
                                    if cfp_trace::enabled() {
                                        cfp_trace::counters::CORE_WORKER_PANICS.inc();
                                    }
                                    return Err(CfpError::WorkerPanic {
                                        worker: w,
                                        message: panic_message(&*payload),
                                    });
                                }
                            }
                            item -= threads as i64;
                        }
                        if !sink.flush() && !poison.load(Ordering::Relaxed) {
                            return Err(CfpError::WorkerPanic {
                                worker: w,
                                message: "result channel disconnected".to_string(),
                            });
                        }
                        Ok(peak)
                    })
                })
                .collect();
            drop(tx);
            // Drain results on the caller's thread while workers run.
            while let Ok(batch) = rx.recv() {
                for (itemset, support) in batch {
                    sink.emit(&itemset, support);
                    stats.itemsets += 1;
                }
            }
            for (w, h) in handles.into_iter().enumerate() {
                // join() only errors on a panic that escaped catch_unwind
                // (e.g. inside BatchSink::flush); fold it into the same
                // structured error instead of re-panicking.
                let joined = h.join().unwrap_or_else(|payload| {
                    poison.store(true, Ordering::Relaxed);
                    Err(CfpError::WorkerPanic { worker: w, message: panic_message(&*payload) })
                });
                match joined {
                    Ok(peak) => worker_peaks[w] = peak,
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        });
        if let Some(e) = first_error {
            return Err(e);
        }
        stats.mine_time = sw.lap();

        // Upper-bound estimate: shared structures plus all worker peaks.
        stats.peak_bytes = tree_bytes.max(array.heap_bytes()) + worker_peaks.iter().sum::<u64>();
        stats.avg_bytes = stats.peak_bytes;
        stats.worker_peaks = worker_peaks;
        Ok(stats)
    }
}

/// Renders a caught panic payload as a diagnostic string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, CountingSink};
    use cfp_data::profiles;

    fn sorted(miner: &dyn Miner, db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        miner.mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    #[test]
    fn parallel_matches_sequential_on_textbook_example() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let seq = sorted(&CfpGrowthMiner::new(), &db, 2);
        for threads in [2, 3, 8] {
            assert_eq!(
                sorted(&ParallelCfpGrowthMiner::new(threads), &db, 2),
                seq,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_profile() {
        let p = profiles::by_name("retail-like").unwrap();
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let mut seq = CountingSink::new();
        CfpGrowthMiner::new().mine(&db, minsup, &mut seq);
        let mut par = CountingSink::new();
        let stats = ParallelCfpGrowthMiner::new(4).mine(&db, minsup, &mut par);
        assert_eq!(
            (seq.count, seq.support_sum, seq.item_sum),
            (par.count, par.support_sum, par.item_sum)
        );
        assert_eq!(stats.itemsets, par.count);
        assert!(stats.peak_bytes > 0);
    }

    #[test]
    fn one_thread_falls_back_to_sequential() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1, 2], vec![2, 3]]);
        let a = sorted(&ParallelCfpGrowthMiner::new(1), &db, 1);
        let b = sorted(&CfpGrowthMiner::new(), &db, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1]]);
        let got = sorted(&ParallelCfpGrowthMiner::new(64), &db, 1);
        assert_eq!(got, sorted(&CfpGrowthMiner::new(), &db, 1));
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::new();
        let mut sink = CollectSink::new();
        let stats = ParallelCfpGrowthMiner::new(4).mine(&db, 1, &mut sink);
        assert_eq!(stats.itemsets, 0);
    }
}
