//! Parallel CFP-growth.
//!
//! The mine phase of FP-growth decomposes naturally: the recursion rooted
//! at each first-level item touches only that item's subarray and the
//! subarrays of more frequent items — all reads. The paper's related-work
//! section (§5, class 4) surveys parallel and distributed FP-growth built
//! on exactly this independence; here we exploit it with worker threads
//! over one shared, immutable initial [`CfpArray`](cfp_array::CfpArray).
//!
//! The scan, build, and conversion phases stay sequential (they are a
//! small fraction of the runtime at low support). How first-level items
//! reach the workers is governed by [`Schedule`]:
//!
//! - **`Schedule::Dynamic`** (default): workers claim cost-sorted item
//!   tasks from a shared [`TaskQueue`] — heavy items singly, the cheap
//!   tail in chunks — so a worker stuck on a deep conditional recursion
//!   never strands unclaimed work. Each worker keeps one long-lived
//!   arena recycled across its conditional trees
//!   ([`cfp_memman::Arena::reset`]), and buffers each task's itemsets so
//!   the collector can emit them in descending item order: the output
//!   stream is byte-for-byte identical to sequential mining.
//! - **`Schedule::Static`**: the pre-scheduler behaviour — items dealt
//!   round-robin up front, result batches streamed in nondeterministic
//!   order. Kept as the baseline the skew benchmark compares against.
//!
//! Two robustness mechanisms live here:
//!
//! - **One budget, many arenas.** `mem_budget` is enforced by a single
//!   shared [`BudgetPool`] charged by the initial tree *and* every
//!   worker's conditional trees — `t` workers cannot oversubscribe the
//!   limit `t`-fold. Exhaustion in any worker poisons the run and comes
//!   back as a structured [`CfpError::MemoryExhausted`].
//! - **A watchdog.** With `worker_timeout` set, each worker ticks a
//!   heartbeat counter per claimed task; if no result arrives and no
//!   unfinished worker's heartbeat advances for the full timeout, the
//!   run is poisoned and fails with [`CfpError::WorkerTimeout`] instead
//!   of hanging forever. Threads are spawned (not scoped) over
//!   `Arc`-shared structures so a truly wedged worker can be abandoned.
//!
//! `peak_bytes` is an upper-bound estimate: the shared structures plus
//! the sum of the workers' conditional-structure peaks (as if all workers
//! hit their individual peaks simultaneously).

use crate::growth::{
    drain_topk, mine_one_item, mine_single_path_root, try_build_tree_with, ArrayCharge,
    CfpGrowthMiner, MineOpts, ModeCtx, Scratch, SubsumeIndex, TopKState,
};
use crate::schedule::{Schedule, TaskQueue};
use cfp_array::convert;
use cfp_data::{CfpError, Item, ItemsetSink, MineStats, Miner, OutputMode, TransactionDb};
use cfp_memman::{ArenaOptions, BudgetPool, Component};
use cfp_metrics::{HeapSize, Stopwatch};
use cfp_trace::{span, Phase};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Multi-threaded CFP-growth over a shared initial CFP-array.
#[derive(Clone, Debug)]
pub struct ParallelCfpGrowthMiner {
    /// Number of worker threads (0 or 1 falls back to sequential).
    pub threads: usize,
    /// Enumerate single-path structures directly instead of recursing.
    pub single_path_opt: bool,
    /// Byte cap on the whole run, enforced by one [`BudgetPool`] shared
    /// between the initial tree's arena and every worker's conditional
    /// trees. Exceeding it surfaces as [`CfpError::MemoryExhausted`]
    /// from [`Miner::try_mine`] (or a panic from the infallible
    /// [`Miner::mine`]).
    pub mem_budget: Option<u64>,
    /// Pre-built pool to charge instead of a fresh one from
    /// `mem_budget`; lets the run supervisor read the pool's peak and
    /// compaction gauges after the run.
    pub pool: Option<BudgetPool>,
    /// Watchdog limit: fail with [`CfpError::WorkerTimeout`] when no
    /// worker makes progress for this long. `None` disables it.
    pub worker_timeout: Option<Duration>,
    /// Compact arenas and retry once before reporting exhaustion.
    pub compact_on_pressure: bool,
    /// How first-level items are distributed to workers.
    pub schedule: Schedule,
    /// Cooperative cancellation, polled by every worker at task
    /// boundaries (next to the poison check). When it fires the run
    /// stops claiming, drains the contiguous emitted prefix, and returns
    /// [`CfpError::Interrupted`] if any item remains unmined.
    pub cancel: Option<cfp_fault::CancelToken>,
    /// Resume support: the `resume_skip` highest first-level items were
    /// fully emitted by a previous run. They are excluded from the task
    /// queue and the ordered emitter starts below them, so this run's
    /// output continues byte-exactly where the previous one stopped.
    /// In condensed modes the skipped items are still scheduled (their
    /// itemsets seed the reconcile index) but reconciled silently.
    pub resume_skip: u64,
    /// What the run emits: every frequent itemset, only closed or
    /// maximal ones, or the top-k by support. Condensed modes mine with
    /// per-task local state and reconcile at the ordered emitter, so the
    /// output stream stays byte-identical to sequential for every thread
    /// count and schedule.
    pub output: OutputMode,
}

impl ParallelCfpGrowthMiner {
    /// A parallel miner with the given worker count and the default
    /// dynamic schedule.
    pub fn new(threads: usize) -> Self {
        ParallelCfpGrowthMiner {
            threads,
            single_path_opt: true,
            mem_budget: None,
            pool: None,
            worker_timeout: None,
            compact_on_pressure: false,
            schedule: Schedule::default(),
            cancel: None,
            resume_skip: 0,
            output: OutputMode::default(),
        }
    }

    fn effective_pool(&self) -> Option<BudgetPool> {
        self.pool.clone().or_else(|| self.mem_budget.map(BudgetPool::new))
    }
}

/// Channel tag marking a batch as order-free streaming output (static
/// schedule). Item-tagged batches use the item id itself, which is always
/// a dense recoded id well below this sentinel.
const STREAM: u32 = u32::MAX;

/// One result batch: `(itemset, support)` pairs in emission order.
type Batch = Vec<(Vec<Item>, u64)>;

/// Batches itemsets into a channel (per worker, static schedule).
struct BatchSink {
    tx: mpsc::Sender<(u32, Batch)>,
    buf: Vec<(Vec<Item>, u64)>,
}

const BATCH: usize = 1024;

impl BatchSink {
    /// Sends the buffered batch; `false` means the receiver is gone (the
    /// caller panicked or bailed) and the batch was dropped.
    fn flush(&mut self) -> bool {
        if self.buf.is_empty() {
            return true;
        }
        self.tx.send((STREAM, std::mem::take(&mut self.buf))).is_ok()
    }
}

impl ItemsetSink for BatchSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.buf.push((itemset.to_vec(), support));
        if self.buf.len() >= BATCH {
            self.flush();
        }
    }
}

/// Buffers one task's itemsets in emission order (dynamic schedule).
#[derive(Default)]
struct TaskSink {
    buf: Vec<(Vec<Item>, u64)>,
}

impl ItemsetSink for TaskSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.buf.push((itemset.to_vec(), support));
    }
}

/// Global condensed-mode reconciliation carried by the ordered emitter.
///
/// Workers mine with *local* subsumption indexes, which can never reject
/// a true closed/maximal itemset (a local subsumer is itself accepted, so
/// subsumption is transitive) but can accept candidates whose subsumer
/// lives in another task's subtree. Replaying the per-item batches in
/// descending item order — the exact sequential emission order — against
/// one global index removes those false accepts: any subsumer has a top
/// item ≥ the candidate's, so it is replayed (and indexed) no later than
/// the candidate itself.
struct Reconcile {
    index: SubsumeIndex,
    /// Closed mode: subsumption only counts at equal support.
    closed: bool,
}

/// Forwards worker batches to the caller's sink.
///
/// Item-tagged batches (dynamic schedule, and every schedule in condensed
/// modes) are held until every batch for a higher item id has been
/// emitted, reproducing the sequential `for item in (0..n).rev()`
/// emission order exactly; [`STREAM`]-tagged batches (static schedule,
/// `all` output) pass straight through.
struct OrderedEmitter<'a> {
    sink: &'a mut dyn ItemsetSink,
    /// Buffered batches by item id, drained from `next` downwards.
    pending: Vec<Option<Batch>>,
    /// Highest item id not yet emitted.
    next: i64,
    /// All first-level items, counting ones skipped on resume — progress
    /// notifications report *global* completed counts.
    total: u32,
    /// Tags at or above this were emitted by the run being resumed: they
    /// replay into the reconcile index but reach neither the sink nor
    /// the progress hook.
    live_below: u32,
    reconcile: Option<Reconcile>,
    emitted: u64,
}

impl<'a> OrderedEmitter<'a> {
    /// Replays tags `sched_max-1 … 0` in order, emitting only tags below
    /// `live_below`; on a resume, `live_below` sits below `total`
    /// because the higher items are already out (condensed modes still
    /// schedule them, so `sched_max` stays at `total` there).
    fn new(
        sink: &'a mut dyn ItemsetSink,
        total: u32,
        sched_max: u32,
        live_below: u32,
        output: OutputMode,
    ) -> Self {
        let reconcile = match output {
            OutputMode::Closed => Some(Reconcile { index: SubsumeIndex::default(), closed: true }),
            OutputMode::Maximal => {
                Some(Reconcile { index: SubsumeIndex::default(), closed: false })
            }
            OutputMode::All | OutputMode::TopK(_) => None,
        };
        OrderedEmitter {
            sink,
            pending: (0..sched_max).map(|_| None).collect(),
            next: sched_max as i64 - 1,
            total,
            live_below,
            reconcile,
            emitted: 0,
        }
    }

    /// `true` while item-tagged batches are still owed (dynamic
    /// schedule) — the emitted stream is a strict prefix of the run.
    fn unfinished(&self) -> bool {
        self.next >= 0
    }

    /// Emits a batch; in condensed modes each candidate is first checked
    /// against (then inserted into) the global reconcile index, and only
    /// `live` tags reach the sink — resumed tags replay silently.
    fn emit_batch(&mut self, batch: Batch, live: bool) {
        match &mut self.reconcile {
            None => {
                for (itemset, support) in batch {
                    self.sink.emit(&itemset, support);
                    self.emitted += 1;
                }
            }
            Some(rec) => {
                for (itemset, support) in batch {
                    let want = if rec.closed { Some(support) } else { None };
                    if rec.index.subsumes(&itemset, want) {
                        if cfp_trace::enabled() {
                            if rec.closed {
                                cfp_trace::counters::CORE_CLOSED_PRUNED.inc();
                            } else {
                                cfp_trace::counters::CORE_MAXIMAL_PRUNED.inc();
                            }
                        }
                        continue;
                    }
                    rec.index.insert(&itemset, support);
                    if live {
                        self.sink.emit(&itemset, support);
                        self.emitted += 1;
                    }
                }
            }
        }
    }

    fn handle(&mut self, tag: u32, batch: Batch) -> Result<(), CfpError> {
        if tag == STREAM {
            self.emit_batch(batch, true);
            return Ok(());
        }
        self.pending[tag as usize] = Some(batch);
        while self.next >= 0 {
            match self.pending[self.next as usize].take() {
                Some(batch) => {
                    let live = (self.next as u32) < self.live_below;
                    self.emit_batch(batch, live);
                    // Everything up to and including item `next` is now
                    // in the sink: an exact watermark of total - next
                    // completed first-level items.
                    let done = (self.total as i64 - self.next) as u64;
                    self.next -= 1;
                    if live {
                        let emit_t0 = cfp_trace::hist::maybe_now();
                        let emitted = self.sink.progress(cfp_data::MineProgress::Items { done });
                        cfp_trace::hist::record_since(&cfp_trace::hist::CORE_EMIT_NANOS, emit_t0);
                        emitted?;
                    }
                }
                None => break,
            }
        }
        Ok(())
    }
}

impl Miner for ParallelCfpGrowthMiner {
    fn name(&self) -> &'static str {
        "cfp-growth-parallel"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        self.try_mine(db, min_support, sink).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible mine with worker containment: a panic inside any worker
    /// is caught at the thread boundary ([`catch_unwind`]), a shared
    /// poison flag cancels the remaining workers at their next work item,
    /// and the first failure comes back as [`CfpError::WorkerPanic`],
    /// [`CfpError::MemoryExhausted`], or [`CfpError::WorkerTimeout`] —
    /// the process and the caller's sink survive (the sink may have
    /// received a partial result stream).
    fn try_mine(
        &self,
        db: &TransactionDb,
        min_support: u64,
        sink: &mut dyn ItemsetSink,
    ) -> Result<MineStats, CfpError> {
        let pool = self.effective_pool();
        if self.threads <= 1 {
            return CfpGrowthMiner { single_path_opt: self.single_path_opt, mem_budget: None }
                .try_mine_with(
                    db,
                    min_support,
                    sink,
                    &MineOpts {
                        pool,
                        compact_on_pressure: self.compact_on_pressure,
                        cancel: self.cancel.clone(),
                        resume_skip: self.resume_skip,
                        output: self.output,
                        ..Default::default()
                    },
                );
        }
        let mut stats = MineStats::default();
        let mut sw = Stopwatch::start();

        let (recoder, tree) = {
            let _s = span(Phase::Build);
            try_build_tree_with(
                db,
                min_support,
                ArenaOptions {
                    budget: None,
                    pool: pool.clone(),
                    compact_on_pressure: self.compact_on_pressure,
                    component: Component::BuildTree,
                },
            )?
        };
        stats.scan_time = std::time::Duration::ZERO; // folded into build
        stats.build_time = sw.lap();
        stats.tree_nodes = tree.num_nodes();
        let tree_bytes = tree.heap_bytes();

        let array = {
            let _s = span(Phase::Convert);
            convert(&tree)
        };
        drop(tree);
        let _array_charge = ArrayCharge::new(pool.clone(), array.heap_bytes());
        stats.convert_time = sw.lap();

        let globals: Vec<Item> =
            (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        let n = recoder.num_items() as u32;
        let threads = self.threads.min(n.max(1) as usize);
        let single_path_opt = self.single_path_opt;
        let schedule = self.schedule;
        let output = self.output;
        // One global top-k heap shared by every worker: offers are
        // commutative (the final content is the set of k best, fixed by
        // the input), so the drain below is deterministic for any thread
        // count or schedule.
        let topk: Option<Arc<TopKState>> = match output {
            OutputMode::TopK(k) => Some(Arc::new(TopKState::new(k))),
            _ => None,
        };
        let opts = MineOpts {
            pool: pool.clone(),
            compact_on_pressure: self.compact_on_pressure,
            cancel: self.cancel.clone(),
            output,
            ..Default::default()
        };

        // A globally single-path array needs no parallelism — and must not
        // be decomposed per item, or the emission order diverges from the
        // sequential shortcut's depth-grouped order. Mine it inline so
        // output stays byte-identical across thread counts and schedules.
        // A single-path run has no per-item watermarks, so a manifest can
        // only ever record zero completed items — resume_skip > 0 implies
        // the fingerprint-matched original was not single-path.
        if single_path_opt && self.resume_skip == 0 {
            let inline = {
                let _s = span(Phase::Mine);
                let mut mode = ModeCtx::new_shared(output, &topk);
                mine_single_path_root(&array, &globals, min_support, sink, &opts, &mut mode)
                    .map(|itemsets| itemsets + drain_topk(&mode, sink))
            };
            if let Some(itemsets) = inline {
                stats.mine_time = sw.lap();
                stats.itemsets = itemsets;
                stats.peak_bytes = tree_bytes.max(array.heap_bytes());
                if let Some(p) = &pool {
                    stats.peak_bytes = stats.peak_bytes.max(p.peak());
                }
                stats.avg_bytes = stats.peak_bytes;
                return Ok(stats);
            }
        }

        if cfp_trace::enabled() {
            cfp_trace::counters::CORE_WORKERS.record(threads as u64);
            cfp_trace::counters::CORE_FIRST_LEVEL_ITEMS.record(n as u64);
        }
        let array = Arc::new(array);
        let globals = Arc::new(globals);
        // Items ≥ max_item were emitted by the run being resumed. In
        // condensed modes they are still mined — their itemsets seed the
        // reconcile index, exactly like the sequential quiet re-mine —
        // and the emitter replays them without emitting.
        let max_item = (n as u64).saturating_sub(self.resume_skip) as u32;
        let sched_max = if output.is_condensed() { n } else { max_item };
        let queue = Arc::new(TaskQueue::with_limit(&array, sched_max));
        let poison = Arc::new(AtomicBool::new(false));
        let heartbeats: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let (tx, rx) = mpsc::channel::<(u32, Batch)>();
        let mut worker_peaks = vec![0u64; threads];
        let mut worker_tasks = vec![0u64; threads];
        let mut worker_costs = vec![0u64; threads];
        let mut first_error: Option<CfpError> = None;

        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let tx = tx.clone();
                let array = Arc::clone(&array);
                let globals = Arc::clone(&globals);
                let queue = Arc::clone(&queue);
                let poison = Arc::clone(&poison);
                let heartbeats = Arc::clone(&heartbeats);
                let opts = opts.clone();
                let topk = topk.clone();
                std::thread::spawn(move || -> Result<(u64, u64, u64), CfpError> {
                    if cfp_trace::events::capturing() {
                        // Pin this worker's event track to a stable name
                        // before the mine-phase span records its first
                        // event (which would auto-register the track
                        // under a fallback name).
                        cfp_trace::events::name_thread(&format!("worker-{w}"));
                    }
                    // Each worker's mining wall time accumulates into
                    // the mine phase (span count = worker count).
                    let _s = span(Phase::Mine);
                    match schedule {
                        Schedule::Static => {
                            let mut sink = BatchSink { tx, buf: Vec::with_capacity(BATCH) };
                            let mut scratch = Scratch::default();
                            let mut peak = 0u64;
                            let mut tasks = 0u64;
                            let mut cost = 0u64;
                            let mut item = sched_max as i64 - 1 - w as i64;
                            // Round-robin from least to most frequent.
                            while item >= 0 {
                                // A failed sibling poisons the run; stop at
                                // the next work item instead of mining into
                                // the void. Cancellation stops the same way
                                // — cooperatively, at a task boundary.
                                if poison.load(Ordering::Relaxed)
                                    || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled())
                                {
                                    break;
                                }
                                worker_tick(&heartbeats[w], schedule, tasks, 0);
                                if cfp_fault::should_fail("core.worker.stall") {
                                    // Injected hang: hold the heartbeat
                                    // still until the watchdog poisons the
                                    // run, then exit.
                                    while !poison.load(Ordering::Relaxed) {
                                        std::thread::sleep(Duration::from_millis(1));
                                    }
                                    break;
                                }
                                tasks += 1;
                                let task_cost = array.subarray_bytes(item as u32);
                                cost += task_cost;
                                if cfp_trace::events::capturing() {
                                    // Static deals are never steals: the
                                    // round-robin assignment is fixed.
                                    cfp_trace::events::record(
                                        cfp_trace::events::EventKind::TaskClaim {
                                            item: item as u32,
                                            cost: task_cost,
                                            stolen: false,
                                        },
                                    );
                                }
                                // Condensed outputs can't stream: each
                                // item's batch is tagged so the emitter
                                // can reconcile subsumption in exact
                                // descending-item order.
                                let mut task_buf: Option<Batch> = None;
                                let result = catch_unwind(AssertUnwindSafe(|| {
                                    if cfp_fault::should_fail("core.worker") {
                                        panic!("injected worker fault (failpoint core.worker)");
                                    }
                                    let mut mode = ModeCtx::new_shared(output, &topk);
                                    if output.is_condensed() {
                                        let mut task = TaskSink::default();
                                        let r = mine_one_item(
                                            &array,
                                            item as u32,
                                            &globals,
                                            min_support,
                                            single_path_opt,
                                            &mut task,
                                            &opts,
                                            &mut scratch,
                                            &mut mode,
                                        );
                                        task_buf = Some(task.buf);
                                        r
                                    } else {
                                        mine_one_item(
                                            &array,
                                            item as u32,
                                            &globals,
                                            min_support,
                                            single_path_opt,
                                            &mut sink,
                                            &opts,
                                            &mut scratch,
                                            &mut mode,
                                        )
                                    }
                                }));
                                match result {
                                    Ok(Ok((_, p))) => {
                                        peak = peak.max(p);
                                        if let Some(buf) = task_buf.take() {
                                            if sink.tx.send((item as u32, buf)).is_err()
                                                && !poison.load(Ordering::Relaxed)
                                            {
                                                return Err(CfpError::WorkerPanic {
                                                    worker: w,
                                                    message: "result channel disconnected"
                                                        .to_string(),
                                                });
                                            }
                                        }
                                    }
                                    Ok(Err(e)) => {
                                        poison.store(true, Ordering::Relaxed);
                                        return Err(e);
                                    }
                                    Err(payload) => {
                                        poison.store(true, Ordering::Relaxed);
                                        if cfp_trace::enabled() {
                                            cfp_trace::counters::CORE_WORKER_PANICS.inc();
                                        }
                                        return Err(CfpError::WorkerPanic {
                                            worker: w,
                                            message: panic_message(&*payload),
                                        });
                                    }
                                }
                                item -= threads as i64;
                            }
                            if !sink.flush() && !poison.load(Ordering::Relaxed) {
                                return Err(CfpError::WorkerPanic {
                                    worker: w,
                                    message: "result channel disconnected".to_string(),
                                });
                            }
                            Ok((peak, tasks, cost))
                        }
                        Schedule::Dynamic => {
                            // Claims beyond the fair static share count as
                            // steals: work the dynamic queue moved onto
                            // this worker that round-robin would not have.
                            let fair_share = (n as u64).div_ceil(threads as u64);
                            let mut scratch = Scratch::recycling();
                            let mut peak = 0u64;
                            let mut tasks = 0u64;
                            let mut cost = 0u64;
                            'claims: while let Some((start, len)) = queue.claim() {
                                for slot in start..start + len {
                                    if poison.load(Ordering::Relaxed)
                                        || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled())
                                    {
                                        break 'claims;
                                    }
                                    worker_tick(&heartbeats[w], schedule, tasks, fair_share);
                                    if cfp_fault::should_fail("core.worker.stall") {
                                        while !poison.load(Ordering::Relaxed) {
                                            std::thread::sleep(Duration::from_millis(1));
                                        }
                                        break 'claims;
                                    }
                                    let item = queue.item(slot);
                                    tasks += 1;
                                    cost += queue.cost(slot);
                                    if cfp_trace::events::capturing() {
                                        // Same steal definition as
                                        // `worker_tick`: claims past the
                                        // fair round-robin share.
                                        cfp_trace::events::record(
                                            cfp_trace::events::EventKind::TaskClaim {
                                                item,
                                                cost: queue.cost(slot),
                                                stolen: tasks > fair_share,
                                            },
                                        );
                                    }
                                    let mut sink = TaskSink::default();
                                    let result = catch_unwind(AssertUnwindSafe(|| {
                                        if cfp_fault::should_fail("core.worker") {
                                            panic!("injected worker fault (failpoint core.worker)");
                                        }
                                        // Condensed state is per task: a
                                        // fresh local index each item,
                                        // reconciled globally by the
                                        // emitter. Top-k shares the one
                                        // global heap.
                                        let mut mode = ModeCtx::new_shared(output, &topk);
                                        mine_one_item(
                                            &array,
                                            item,
                                            &globals,
                                            min_support,
                                            single_path_opt,
                                            &mut sink,
                                            &opts,
                                            &mut scratch,
                                            &mut mode,
                                        )
                                    }));
                                    match result {
                                        Ok(Ok((_, p))) => {
                                            peak = peak.max(p);
                                            if tx.send((item, sink.buf)).is_err()
                                                && !poison.load(Ordering::Relaxed)
                                            {
                                                return Err(CfpError::WorkerPanic {
                                                    worker: w,
                                                    message: "result channel disconnected"
                                                        .to_string(),
                                                });
                                            }
                                        }
                                        Ok(Err(e)) => {
                                            poison.store(true, Ordering::Relaxed);
                                            return Err(e);
                                        }
                                        Err(payload) => {
                                            poison.store(true, Ordering::Relaxed);
                                            if cfp_trace::enabled() {
                                                cfp_trace::counters::CORE_WORKER_PANICS.inc();
                                            }
                                            return Err(CfpError::WorkerPanic {
                                                worker: w,
                                                message: panic_message(&*payload),
                                            });
                                        }
                                    }
                                }
                            }
                            Ok((peak, tasks, cost))
                        }
                    }
                })
            })
            .collect();
        drop(tx);

        // Drain results on the caller's thread while workers run. With a
        // worker timeout, poll with `recv_timeout` and watch the
        // heartbeats of unfinished workers; a window with neither a batch
        // nor a heartbeat tick is a stall.
        let mut emitter = OrderedEmitter::new(sink, n, sched_max, max_item, output);
        let mut timed_out = false;
        match self.worker_timeout {
            None => {
                while let Ok((tag, batch)) = rx.recv() {
                    if let Err(e) = emitter.handle(tag, batch) {
                        // A failed progress hook (checkpoint commit) ends
                        // the run like a poisoned worker would.
                        poison.store(true, Ordering::Relaxed);
                        first_error = Some(e);
                        break;
                    }
                }
            }
            Some(limit) => {
                let tick = (limit / 4).max(Duration::from_millis(5)).min(limit);
                let mut last_beats: Vec<u64> =
                    heartbeats.iter().map(|h| h.load(Ordering::Relaxed)).collect();
                let mut waited = Duration::ZERO;
                loop {
                    match rx.recv_timeout(tick) {
                        Ok((tag, batch)) => {
                            waited = Duration::ZERO;
                            if let Err(e) = emitter.handle(tag, batch) {
                                poison.store(true, Ordering::Relaxed);
                                first_error = Some(e);
                                break;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            let beats: Vec<u64> =
                                heartbeats.iter().map(|h| h.load(Ordering::Relaxed)).collect();
                            let advanced =
                                beats.iter().zip(&last_beats).any(|(now, before)| now != before);
                            if advanced {
                                last_beats = beats;
                                waited = Duration::ZERO;
                                continue;
                            }
                            waited += tick;
                            if waited < limit {
                                continue;
                            }
                            // Stall: no batch, no heartbeat, full window.
                            // Blame the first unfinished worker.
                            let stalled =
                                handles.iter().position(|h| !h.is_finished()).unwrap_or_default();
                            poison.store(true, Ordering::Relaxed);
                            if cfp_trace::enabled() {
                                cfp_trace::counters::CORE_WORKER_STALLS.inc();
                            }
                            first_error = Some(CfpError::WorkerTimeout {
                                worker: stalled,
                                waited_ms: waited.as_millis() as u64,
                            });
                            timed_out = true;
                            break;
                        }
                    }
                }
                // Drain whatever the cancelled workers already sent so
                // they can finish their final flush and exit.
                while let Ok((tag, batch)) = rx.try_recv() {
                    if !timed_out && first_error.is_none() {
                        if let Err(e) = emitter.handle(tag, batch) {
                            poison.store(true, Ordering::Relaxed);
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
        stats.itemsets = emitter.emitted;
        let unfinished = emitter.unfinished();
        drop(emitter);

        for (w, h) in handles.into_iter().enumerate() {
            if timed_out {
                // Give cancelled workers a short grace to observe the
                // poison flag; abandon any that stay wedged (they hold
                // only Arc'd shared state, which outlives the run).
                let mut grace = 50;
                while !h.is_finished() && grace > 0 {
                    std::thread::sleep(Duration::from_millis(2));
                    grace -= 1;
                }
                if !h.is_finished() {
                    drop(h);
                    continue;
                }
            }
            // join() only errors on a panic that escaped catch_unwind
            // (e.g. inside BatchSink::flush); fold it into the same
            // structured error instead of re-panicking.
            let joined = h.join().unwrap_or_else(|payload| {
                poison.store(true, Ordering::Relaxed);
                Err(CfpError::WorkerPanic { worker: w, message: panic_message(&*payload) })
            });
            match joined {
                Ok((peak, tasks, cost)) => {
                    worker_peaks[w] = peak;
                    worker_tasks[w] = tasks;
                    worker_costs[w] = cost;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if first_error.is_none() {
            if let Some(cancel) = &self.cancel {
                // Cancellation only counts as an interruption when work
                // remains — a signal landing after the last item leaves a
                // complete run. The dynamic emitter knows exactly; static
                // streams untagged, so judge by claimed task counts.
                let incomplete = match schedule {
                    Schedule::Dynamic => unfinished,
                    Schedule::Static if output.is_condensed() => unfinished,
                    Schedule::Static => worker_tasks.iter().sum::<u64>() < sched_max as u64,
                };
                if cancel.is_cancelled() && incomplete {
                    first_error = Some(CfpError::Interrupted);
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Top-k emits nothing while mining (workers offer into the shared
        // heap); the winners drain here, sorted, once the set is final.
        if topk.is_some() {
            let mode = ModeCtx::new_shared(output, &topk);
            stats.itemsets += drain_topk(&mode, sink);
        }
        stats.mine_time = sw.lap();

        // Upper-bound estimate: shared structures plus all worker peaks.
        stats.peak_bytes = tree_bytes.max(array.heap_bytes()) + worker_peaks.iter().sum::<u64>();
        if let Some(p) = &pool {
            stats.peak_bytes = stats.peak_bytes.max(p.peak());
        }
        stats.avg_bytes = stats.peak_bytes;
        stats.worker_peaks = worker_peaks;
        stats.worker_tasks = worker_tasks;
        stats.worker_costs = worker_costs;
        Ok(stats)
    }
}

/// Per-task worker bookkeeping: the watchdog heartbeat, plus the
/// scheduler's claim/steal counters when tracing is on. `done` is the
/// number of tasks the worker completed before this one; under the
/// dynamic schedule, claims past `fair_share` (the round-robin deal size)
/// are counted as steals.
#[inline]
fn worker_tick(heartbeat: &AtomicU64, schedule: Schedule, done: u64, fair_share: u64) {
    // The watchdog counts a worker as live while its heartbeat advances
    // between claimed tasks.
    heartbeat.fetch_add(1, Ordering::Relaxed);
    if cfp_trace::enabled() {
        cfp_trace::counters::CORE_WORKER_HEARTBEATS.inc();
        if schedule == Schedule::Dynamic {
            cfp_trace::counters::CORE_TASKS_CLAIMED.inc();
            if done >= fair_share {
                cfp_trace::counters::CORE_TASKS_STOLEN.inc();
            }
        }
    }
}

/// Renders a caught panic payload as a diagnostic string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, CountingSink};
    use cfp_data::profiles;

    fn sorted(miner: &dyn Miner, db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
        let mut sink = CollectSink::new();
        miner.mine(db, minsup, &mut sink);
        sink.into_sorted()
    }

    fn with_schedule(threads: usize, schedule: Schedule) -> ParallelCfpGrowthMiner {
        ParallelCfpGrowthMiner { schedule, ..ParallelCfpGrowthMiner::new(threads) }
    }

    #[test]
    fn parallel_matches_sequential_on_textbook_example() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ]);
        let seq = sorted(&CfpGrowthMiner::new(), &db, 2);
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            for threads in [2, 3, 8] {
                assert_eq!(
                    sorted(&with_schedule(threads, schedule), &db, 2),
                    seq,
                    "{threads} threads, {} schedule",
                    schedule.name()
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_a_profile() {
        let p = profiles::by_name("retail-like").unwrap();
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let mut seq = CountingSink::new();
        CfpGrowthMiner::new().mine(&db, minsup, &mut seq);
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let mut par = CountingSink::new();
            let stats = with_schedule(4, schedule).mine(&db, minsup, &mut par);
            assert_eq!(
                (seq.count, seq.support_sum, seq.item_sum),
                (par.count, par.support_sum, par.item_sum),
                "{} schedule",
                schedule.name()
            );
            assert_eq!(stats.itemsets, par.count);
            assert!(stats.peak_bytes > 0);
        }
    }

    #[test]
    fn dynamic_schedule_emits_in_exact_sequential_order() {
        // Not just the same multiset: the same stream. The ordered
        // emitter replays per-item buffers in descending item order,
        // which is exactly the sequential `for item in (0..n).rev()`.
        let p = profiles::by_name("retail-like").unwrap();
        let db = p.generate();
        let minsup = p.absolute_support(&db, 2);
        let mut seq = CollectSink::new();
        CfpGrowthMiner::new().mine(&db, minsup, &mut seq);
        for threads in [2, 3, 8] {
            let mut par = CollectSink::new();
            with_schedule(threads, Schedule::Dynamic).mine(&db, minsup, &mut par);
            assert_eq!(
                par.itemsets, seq.itemsets,
                "dynamic {threads}-thread emission order diverged from sequential"
            );
        }
    }

    #[test]
    fn one_thread_falls_back_to_sequential() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1, 2], vec![2, 3]]);
        let a = sorted(&ParallelCfpGrowthMiner::new(1), &db, 1);
        let b = sorted(&CfpGrowthMiner::new(), &db, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let db = TransactionDb::from_rows(&[vec![1, 2], vec![1]]);
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let got = sorted(&with_schedule(64, schedule), &db, 1);
            assert_eq!(got, sorted(&CfpGrowthMiner::new(), &db, 1), "{}", schedule.name());
        }
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::new();
        let mut sink = CollectSink::new();
        let stats = ParallelCfpGrowthMiner::new(4).mine(&db, 1, &mut sink);
        assert_eq!(stats.itemsets, 0);
    }

    #[test]
    fn budget_is_one_shared_pool_not_per_worker_copies() {
        // The regression this guards: `mem_budget` used to cap only the
        // initial build, leaving every worker's conditional trees
        // unaccounted (t workers could oversubscribe the limit t-fold).
        // With the shared pool, the initial tree AND every conditional
        // tree of every worker reserve from one limit. The cumulative
        // reservation gauge makes that observable deterministically:
        // it must exceed the build charge alone.
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut db = TransactionDb::new();
        for _ in 0..120 {
            let t: Vec<Item> = (0..16).filter(|_| rng.gen_bool(0.7)).collect();
            db.push(&t);
        }
        let (_, tree) = crate::growth::try_build_tree(&db, 1, None).expect("uncapped build");
        let build_charge = tree.arena_footprint() - 1; // offset 0 is the null byte
        drop(tree);

        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let pool = BudgetPool::new(1 << 30);
            let miner = ParallelCfpGrowthMiner {
                pool: Some(pool.clone()),
                schedule,
                ..ParallelCfpGrowthMiner::new(4)
            };
            let mut a = CollectSink::new();
            miner.try_mine(&db, 1, &mut a).expect("generous pool");
            let mut b = CollectSink::new();
            CfpGrowthMiner::new().mine(&db, 1, &mut b);
            assert_eq!(a.into_sorted(), b.into_sorted(), "{} schedule", schedule.name());

            assert!(
                pool.reserved_total() > build_charge,
                "conditional trees must charge the shared pool (total {} vs build {build_charge})",
                pool.reserved_total()
            );
            assert_eq!(pool.used(), 0, "every arena must release its reservation on drop/reset");
            assert!(pool.peak() >= build_charge);
            assert!(pool.peak() <= pool.limit());
        }
    }

    #[test]
    fn dynamic_schedule_reports_per_worker_tasks_and_costs() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut db = TransactionDb::new();
        for _ in 0..200 {
            let t: Vec<Item> = (0..24).filter(|_| rng.gen_bool(0.3)).collect();
            db.push(&t);
        }
        let mut sink = CountingSink::new();
        let stats = with_schedule(4, Schedule::Dynamic).mine(&db, 1, &mut sink);
        assert_eq!(stats.worker_tasks.len(), 4);
        assert_eq!(stats.worker_costs.len(), 4);
        // Every first-level item is claimed exactly once, by someone.
        let (_, tree) = crate::growth::try_build_tree(&db, 1, None).unwrap();
        let n = tree.num_items() as u64;
        assert_eq!(stats.worker_tasks.iter().sum::<u64>(), n);
    }

    #[test]
    fn parallel_resume_skip_continues_byte_exactly() {
        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(777);
        let mut db = TransactionDb::new();
        for _ in 0..150 {
            let t: Vec<Item> = (0..20).filter(|_| rng.gen_bool(0.4)).collect();
            db.push(&t);
        }
        for skip in [0u64, 1, 5, 13, 1000] {
            let mut seq = CollectSink::new();
            let opts = MineOpts { resume_skip: skip, ..Default::default() };
            CfpGrowthMiner::new().try_mine_with(&db, 2, &mut seq, &opts).unwrap();
            for threads in [2, 4] {
                let miner = ParallelCfpGrowthMiner {
                    resume_skip: skip,
                    ..ParallelCfpGrowthMiner::new(threads)
                };
                let mut par = CollectSink::new();
                miner.try_mine(&db, 2, &mut par).unwrap();
                assert_eq!(
                    par.itemsets, seq.itemsets,
                    "resumed parallel stream must match resumed sequential (skip={skip}, \
                     threads={threads})"
                );
            }
        }
    }

    #[test]
    fn parallel_cancel_stops_at_a_watermark_and_resume_completes() {
        use cfp_data::MineProgress;
        use cfp_fault::CancelToken;

        struct CancellingSink {
            inner: CollectSink,
            cancel: CancelToken,
            after: u64,
            watermark: u64,
        }
        impl ItemsetSink for CancellingSink {
            fn emit(&mut self, itemset: &[Item], support: u64) {
                self.inner.emit(itemset, support);
            }
            fn progress(&mut self, p: MineProgress<'_>) -> Result<(), CfpError> {
                if let MineProgress::Items { done } = p {
                    self.watermark = done;
                    if done >= self.after {
                        self.cancel.cancel();
                    }
                }
                Ok(())
            }
        }

        use cfp_data::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let mut db = TransactionDb::new();
        for _ in 0..200 {
            let t: Vec<Item> = (0..24).filter(|_| rng.gen_bool(0.4)).collect();
            db.push(&t);
        }
        let mut full = CollectSink::new();
        CfpGrowthMiner::new().try_mine(&db, 2, &mut full).unwrap();

        let cancel = CancelToken::new();
        let mut first = CancellingSink {
            inner: CollectSink::new(),
            cancel: cancel.clone(),
            after: 2,
            watermark: 0,
        };
        let miner =
            ParallelCfpGrowthMiner { cancel: Some(cancel), ..ParallelCfpGrowthMiner::new(4) };
        // The cancel lands on the caller thread mid-drain; workers may in
        // principle have finished everything already, in which case the
        // run legitimately completes. Either way the watermark contract
        // must hold: emitted = the first `watermark` items' stream.
        match miner.try_mine(&db, 2, &mut first) {
            Err(CfpError::Interrupted) => {
                let watermark = first.watermark;
                assert!(watermark >= 2, "cancel fires only past the trigger");
                let resume = ParallelCfpGrowthMiner {
                    resume_skip: watermark,
                    ..ParallelCfpGrowthMiner::new(4)
                };
                let mut second = CollectSink::new();
                resume.try_mine(&db, 2, &mut second).unwrap();
                let mut joined = first.inner.itemsets;
                joined.extend(second.itemsets);
                assert_eq!(
                    joined, full.itemsets,
                    "pre-cancel + post-resume must equal the uninterrupted stream"
                );
            }
            Ok(_) => {
                assert_eq!(first.inner.itemsets, full.itemsets, "a completed run is complete");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn watchdog_is_quiet_on_healthy_runs() {
        let db = TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![1, 2, 4],
            vec![1, 2],
            vec![1, 3],
        ]);
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let miner = ParallelCfpGrowthMiner {
                worker_timeout: Some(Duration::from_secs(30)),
                schedule,
                ..ParallelCfpGrowthMiner::new(3)
            };
            let mut sink = CollectSink::new();
            miner.try_mine(&db, 1, &mut sink).expect("healthy run must not time out");
            assert_eq!(
                sink.into_sorted(),
                sorted(&CfpGrowthMiner::new(), &db, 1),
                "{} schedule",
                schedule.name()
            );
        }
    }
}
