//! Persistable mining images: a converted CFP-array plus the item mapping
//! needed to mine it later (or elsewhere).
//!
//! A [`MiningImage`] captures everything the mine phase needs after the
//! two database scans: the compressed array, the recoded-to-original item
//! mapping, and the minimum support the image was built with. Because the
//! CFP-array is 8–10× smaller than an FP-tree, shipping or caching images
//! is correspondingly cheap — build once on the machine that can see the
//! data, mine many times with different sinks or support levels (any
//! support ≥ the build support is valid: items below it are simply absent).

use crate::growth::{mine_one_item, CfpGrowthMiner};
use cfp_array::{convert, CfpArray};
use cfp_data::{Item, ItemRecoder, ItemsetSink, MineStats, TransactionDb};
use cfp_encoding::varint;
use cfp_metrics::{HeapSize, Stopwatch};
use cfp_tree::CfpTree;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CFPI";
const VERSION: u8 = 1;

/// A converted, ready-to-mine CFP-array with its item mapping.
#[derive(Clone, Debug)]
pub struct MiningImage {
    array: CfpArray,
    /// Recoded id -> original item id.
    globals: Vec<Item>,
    /// Minimum support the image was built with.
    min_support: u64,
}

impl MiningImage {
    /// Builds an image from a database (scan + build + convert).
    pub fn build(db: &TransactionDb, min_support: u64) -> Self {
        let recoder = ItemRecoder::scan(db, min_support);
        let tree = CfpTree::from_db(db, &recoder);
        let array = convert(&tree);
        let globals = (0..recoder.num_items() as u32).map(|i| recoder.original(i)).collect();
        MiningImage { array, globals, min_support }
    }

    /// The compressed array.
    pub fn array(&self) -> &CfpArray {
        &self.array
    }

    /// The minimum support the image was built with.
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// Mines the image with `min_support >= self.min_support()`.
    ///
    /// # Panics
    ///
    /// Panics if `min_support` is below the build support (itemsets
    /// between the two thresholds were discarded at build time and cannot
    /// be recovered from the image).
    pub fn mine(&self, min_support: u64, sink: &mut dyn ItemsetSink) -> MineStats {
        assert!(
            min_support >= self.min_support,
            "image was built at support {}, cannot mine at {min_support}",
            self.min_support
        );
        let mut stats = MineStats::default();
        let mut sw = Stopwatch::start();
        let opt = CfpGrowthMiner::new().single_path_opt;
        let mut peak = 0u64;
        // One recycled arena across all first-level items: image mining is
        // sequential, so the same recycling the dynamic scheduler's
        // workers use applies directly.
        let mut scratch = crate::growth::Scratch::recycling();
        let mut mode = crate::growth::ModeCtx::All;
        for item in (0..self.globals.len() as u32).rev() {
            if self.array.item_support(item) < min_support {
                continue;
            }
            let (n, p) = mine_one_item(
                &self.array,
                item,
                &self.globals,
                min_support,
                opt,
                sink,
                &crate::growth::MineOpts::default(),
                &mut scratch,
                &mut mode,
            )
            .unwrap_or_else(|e| panic!("{e}"));
            stats.itemsets += n;
            peak = peak.max(p);
        }
        stats.mine_time = sw.lap();
        stats.peak_bytes = self.array.heap_bytes() + peak;
        stats.tree_nodes = self.array.num_nodes();
        stats
    }

    /// Serializes the image (`CFPI` header, then item mapping, then the
    /// embedded `CFPA` array).
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        let mut buf = [0u8; varint::MAX_LEN_U64];
        let n = varint::write_u64_into(&mut buf, self.min_support);
        w.write_all(&buf[..n])?;
        let n = varint::write_u64_into(&mut buf, self.globals.len() as u64);
        w.write_all(&buf[..n])?;
        for &g in &self.globals {
            let n = varint::write_u64_into(&mut buf, g as u64);
            w.write_all(&buf[..n])?;
        }
        self.array.write_to(w)
    }

    /// Deserializes an image written by [`write_to`](Self::write_to).
    pub fn read_from(mut r: impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a CFPI file"));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "unsupported version"));
        }
        let min_support = read_varint(&mut r)?;
        let n = read_varint(&mut r)? as usize;
        let mut globals = Vec::with_capacity(n);
        for _ in 0..n {
            globals.push(
                u32::try_from(read_varint(&mut r)?).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "item id exceeds u32")
                })?,
            );
        }
        let array = CfpArray::read_from(r)?;
        if array.num_items() != n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "item mapping disagrees with array",
            ));
        }
        Ok(MiningImage { array, globals, min_support })
    }

    /// Convenience: save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_to(std::io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Convenience: load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::read_from(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 || (shift == 63 && byte[0] & 0x7F > 1) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        value |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_data::miner::{CollectSink, Miner};

    fn sample_db() -> TransactionDb {
        TransactionDb::from_rows(&[
            vec![1, 2, 5],
            vec![2, 4],
            vec![2, 3],
            vec![1, 2, 4],
            vec![1, 3],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3, 5],
            vec![1, 2, 3],
        ])
    }

    #[test]
    fn image_mining_matches_direct_mining() {
        let db = sample_db();
        let image = MiningImage::build(&db, 2);
        let mut a = CollectSink::new();
        image.mine(2, &mut a);
        let mut b = CollectSink::new();
        CfpGrowthMiner::new().mine(&db, 2, &mut b);
        assert_eq!(a.into_sorted(), b.into_sorted());
    }

    #[test]
    fn image_supports_higher_thresholds() {
        let db = sample_db();
        let image = MiningImage::build(&db, 2);
        let mut a = CollectSink::new();
        image.mine(4, &mut a);
        let mut b = CollectSink::new();
        CfpGrowthMiner::new().mine(&db, 4, &mut b);
        assert_eq!(a.into_sorted(), b.into_sorted());
    }

    #[test]
    #[should_panic(expected = "cannot mine")]
    fn lower_threshold_is_rejected() {
        let image = MiningImage::build(&sample_db(), 3);
        let mut sink = CollectSink::new();
        image.mine(1, &mut sink);
    }

    #[test]
    fn serialization_round_trip_and_mine() {
        let db = sample_db();
        let image = MiningImage::build(&db, 2);
        let mut bytes = Vec::new();
        image.write_to(&mut bytes).unwrap();
        let loaded = MiningImage::read_from(bytes.as_slice()).unwrap();
        assert_eq!(loaded.min_support(), 2);
        let mut a = CollectSink::new();
        loaded.mine(2, &mut a);
        let mut b = CollectSink::new();
        image.mine(2, &mut b);
        assert_eq!(a.into_sorted(), b.into_sorted());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cfp_image");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cfpi");
        let image = MiningImage::build(&sample_db(), 2);
        image.save(&path).unwrap();
        let loaded = MiningImage::load(&path).unwrap();
        assert_eq!(loaded.array().num_nodes(), image.array().num_nodes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_rejected() {
        assert!(MiningImage::read_from(&b"XXXX"[..]).is_err());
        assert!(MiningImage::read_from(&b"CFPI\x63"[..]).is_err());
    }
}
