//! Telemetry integration tests: histogram accuracy against an exact
//! oracle, merge algebra, Prometheus exposition robustness, and the
//! flight-recorder round trip.
//!
//! The histogram tests are the documented accuracy contract of
//! `cfp_trace::hist`: values below 2^SUB_BITS are recorded exactly, and
//! every reported percentile of a larger distribution is within one
//! sub-bucket (relative error ≤ 2^-SUB_BITS = 6.25%) of the exact
//! order-statistic computed from a sorted copy of the same samples.

use cfp_trace::hist::{self, LatencyHisto};
use cfp_trace::{blackbox, json, metrics};

/// xorshift64* — a tiny seeded generator so distributions are
/// reproducible without pulling in a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The exact rank-based percentile the histogram approximates:
/// `sorted[ceil(q*n) - 1]` on the sorted samples.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts every tracked quantile of `samples` is within the log-linear
/// error bound of the exact oracle.
fn check_against_oracle(samples: &[u64], what: &str) {
    let h = LatencyHisto::new("test.oracle");
    for &s in samples {
        h.record(s);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let snap = h.snapshot();
    assert_eq!(snap.count, samples.len() as u64, "{what}: count");
    assert_eq!(snap.max, *sorted.last().unwrap(), "{what}: max is exact");
    for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
        let approx = snap.percentile(q);
        let exact = exact_percentile(&sorted, q);
        if exact < 1 << hist::SUB_BITS {
            assert_eq!(approx, exact, "{what}: p{q} below 2^SUB_BITS must be exact");
        } else {
            // One sub-bucket of slack on either side: the reported value
            // is the midpoint of the bucket holding the exact rank.
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            let bound = 1.0 / (1 << hist::SUB_BITS) as f64;
            assert!(
                rel <= bound,
                "{what}: p{q} off by {:.2}% (> {:.2}%): approx {approx}, exact {exact}",
                rel * 100.0,
                bound * 100.0
            );
        }
    }
}

#[test]
fn percentiles_track_the_exact_oracle_on_seeded_distributions() {
    let mut rng = Rng(0x0005_eed1);
    // Uniform over a wide range.
    let uniform: Vec<u64> = (0..10_000).map(|_| rng.next() % 1_000_000).collect();
    check_against_oracle(&uniform, "uniform");

    // Log-uniform (heavy dynamic range, like latencies): 2^(0..40).
    let log_uniform: Vec<u64> = (0..10_000).map(|_| 1u64 << (rng.next() % 40)).collect();
    check_against_oracle(&log_uniform, "log-uniform");

    // Bimodal: a fast path around 500ns and a slow path around 2ms.
    let bimodal: Vec<u64> = (0..10_000)
        .map(|_| {
            if rng.next().is_multiple_of(10) {
                2_000_000 + rng.next() % 100_000
            } else {
                500 + rng.next() % 100
            }
        })
        .collect();
    check_against_oracle(&bimodal, "bimodal");

    // Constant distribution: every percentile is the constant.
    check_against_oracle(&vec![42_000; 1_000], "constant");

    // All-small values: exact path.
    let small: Vec<u64> = (0..1_000).map(|_| rng.next() % 16).collect();
    check_against_oracle(&small, "small-exact");
}

#[test]
fn merge_is_associative_and_order_independent() {
    let mut rng = Rng(0x0005_eed2);
    let chunks: Vec<Vec<u64>> =
        (0..4).map(|_| (0..2_500).map(|_| rng.next() % 10_000_000).collect()).collect();

    // One histogram fed everything, in order.
    let all = LatencyHisto::new("test.all");
    for chunk in &chunks {
        for &s in chunk {
            all.record(s);
        }
    }

    // Per-chunk histograms merged left-to-right ((a+b)+c)+d ...
    let left = LatencyHisto::new("test.left");
    // ... and in reverse order d+(c+(b+a)) via snapshots.
    let right = LatencyHisto::new("test.right");
    for chunk in &chunks {
        let part = LatencyHisto::new("test.part");
        for &s in chunk {
            part.record(s);
        }
        left.merge_from(&part);
    }
    for chunk in chunks.iter().rev() {
        let part = LatencyHisto::new("test.part");
        for &s in chunk {
            part.record(s);
        }
        right.merge_snapshot(&part.snapshot());
    }

    let (a, b, c) = (all.snapshot(), left.snapshot(), right.snapshot());
    assert_eq!(a.count, b.count);
    assert_eq!(a.sum, b.sum);
    assert_eq!(a.max, b.max);
    assert_eq!(a.buckets, b.buckets, "merge must be bucket-exact");
    assert_eq!(b.buckets, c.buckets, "merge order must not matter");
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(a.percentile(q), b.percentile(q));
        assert_eq!(b.percentile(q), c.percentile(q));
    }
}

#[test]
fn bucket_bounds_bracket_every_magnitude() {
    // Walk the full u64 range by powers of two with offsets; every value
    // must land in a bucket whose [lo, hi] range contains it.
    for shift in 0..64u32 {
        for &off in &[0u64, 1, 7] {
            let v = (1u64 << shift).saturating_add(off);
            let i = hist::bucket_index(v);
            assert!(
                hist::bucket_lo(i) <= v && v <= hist::bucket_hi(i),
                "value {v} (bucket {i}): [{}, {}]",
                hist::bucket_lo(i),
                hist::bucket_hi(i)
            );
        }
    }
    assert_eq!(hist::bucket_index(u64::MAX), hist::NUM_BUCKETS - 1);
}

#[test]
fn prometheus_output_survives_hostile_label_values() {
    // Fuzz the label-value escaper with every byte pattern that matters
    // to the text exposition format, plus random ASCII garbage.
    let hostile = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "new\nline",
        "all\\three\"\n\\",
        "", // empty value is legal
        "trailing\\",
        "\n\n\n",
    ];
    let labels: Vec<(String, String)> =
        hostile.iter().enumerate().map(|(i, v)| (format!("label_{i}"), v.to_string())).collect();
    let snap = metrics::MetricsSnapshot::capture(1);
    let text = snap.to_prometheus(&labels);
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // Every sample line must be `name{labels} value` or `name value`,
        // with no raw newline having split a label value into a bogus line.
        let (series, value) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("no value separator: {line:?}"));
        assert!(value.parse::<f64>().is_ok(), "sample value does not parse as a number: {line:?}");
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        if let Some(rest) = series.get(name_end..) {
            if !rest.is_empty() {
                assert!(rest.starts_with('{') && rest.ends_with('}'), "bad label block: {line:?}");
            }
        }
    }

    // Seeded random ASCII fuzz of the escaper itself: unescaping the
    // escaped form must give back the input.
    let mut rng = Rng(0x0005_eed3);
    for _ in 0..500 {
        let len = (rng.next() % 24) as usize;
        let raw: String = (0..len)
            .map(|_| {
                // Bias toward the three escaped characters.
                match rng.next() % 6 {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    _ => (b' ' + (rng.next() % 95) as u8) as char,
                }
            })
            .collect();
        let escaped = metrics::escape_label_value(&raw);
        assert!(!escaped.contains('\n'), "raw newline leaked: {escaped:?}");
        let unescaped = escaped
            .replace("\\\\", "\u{0}")
            .replace("\\\"", "\"")
            .replace("\\n", "\n")
            .replace('\u{0}', "\\");
        assert_eq!(unescaped, raw, "escape not invertible for {raw:?}");
    }
}

#[test]
fn metrics_snapshot_json_carries_schema_and_histograms() {
    hist::CORE_MINE_TASK_NANOS.record(1_000);
    let snap = metrics::MetricsSnapshot::capture(3);
    let doc = json::parse(&snap.to_json().to_pretty()).expect("snapshot JSON parses");
    assert_eq!(doc.get("schema").and_then(|j| j.as_str()), Some(metrics::SCHEMA));
    assert_eq!(doc.get("seq").and_then(|j| j.as_u64()), Some(3));
    assert!(doc.get("counters").is_some());
    assert!(doc.get("hists").is_some());
}

#[test]
fn blackbox_round_trips_with_a_valid_checksum_and_renders() {
    let report = blackbox::BlackboxReport::capture(
        "memory budget exhausted (integration test)",
        4,
        vec![("dataset".into(), "kosarak-like".into())],
        None,
        None,
    );
    let doc = report.to_json();
    let reparsed = json::parse(&doc.to_pretty()).expect("blackbox JSON parses");
    let body = blackbox::verify(&reparsed).expect("checksum verifies");
    let rendered = blackbox::render(body);
    assert!(rendered.contains("memory budget exhausted"), "{rendered}");
    assert!(rendered.contains("exit code"), "{rendered}");

    // A flipped byte in the body must break verification.
    let tampered = doc.to_pretty().replace("exhausted", "exhAusted");
    let tampered = json::parse(&tampered).unwrap();
    assert!(blackbox::verify(&tampered).is_err(), "tampering went undetected");
}
