//! Randomized stress testing of the arena allocator against a shadow
//! model.
//!
//! A seeded driver issues thousands of alloc/free/realloc/compact
//! operations against an [`Arena`] while a `BTreeMap` shadow (deterministic iteration keeps the op stream reproducible) records
//! every live chunk's offset, size, and expected contents. After every
//! operation the shadow contents are re-verified; periodically the
//! structural invariants are checked:
//!
//! - live chunks never overlap (intervals use the rounded chunk size),
//! - no live offset reaches [`ptr40::MAX_OFFSET`] (the 0xFF top-byte
//!   range is reserved for the embedded-suffix marker),
//! - the free queues account for exactly the bytes `free_bytes()`
//!   claims (walking every per-size queue),
//! - `live_allocs()` matches the shadow's population.
//!
//! The same arena is then `reset()` and reused for a second full pass,
//! covering the PR's recycling path: a recycled arena must behave
//! exactly like a fresh one while keeping its buffer capacity.

use cfp_data::rng::{Rng, StdRng};
use cfp_encoding::ptr40;
use cfp_memman::{Arena, MAX_CHUNK, MIN_CHUNK};
use std::collections::BTreeMap;

const OPS_PER_PASS: usize = 2000;
const SEEDS: [u64; 8] = [0, 1, 2, 3, 0xA11, 0xBEEF, 0xD15EA5E, 0xFEED];

/// Shadow record of one live allocation: requested size plus the exact
/// bytes the arena must still hold for it.
struct Shadow {
    size: usize,
    contents: Vec<u8>,
}

fn fill_pattern(rng: &mut StdRng, size: usize) -> Vec<u8> {
    (0..size).map(|_| rng.gen::<u8>()).collect()
}

fn check_contents(arena: &Arena, shadow: &BTreeMap<u64, Shadow>) {
    for (&offset, entry) in shadow {
        assert_eq!(
            arena.bytes(offset, entry.size),
            &entry.contents[..],
            "contents of chunk at {offset} (size {}) corrupted",
            entry.size
        );
    }
}

fn check_invariants(arena: &Arena, shadow: &BTreeMap<u64, Shadow>) {
    assert_eq!(arena.live_allocs(), shadow.len() as u64);

    // No overlap between live chunks, measured over the rounded chunk
    // extent the allocator actually reserves.
    let mut intervals: Vec<(u64, u64)> =
        shadow.iter().map(|(&off, e)| (off, off + e.size.max(MIN_CHUNK) as u64)).collect();
    intervals.sort_unstable();
    for pair in intervals.windows(2) {
        assert!(
            pair[0].1 <= pair[1].0,
            "live chunks overlap: [{}, {}) and [{}, {})",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }

    // Offsets must stay clear of the embedded-marker range (top byte
    // 0xFF of a 40-bit pointer). A stress arena is far too small to get
    // near it, but the invariant is what Ptr40::new enforces.
    for &off in shadow.keys() {
        assert!(off != 0 && off <= ptr40::MAX_OFFSET, "offset {off:#x} outside pointer range");
    }

    // Walking every free queue must account for exactly the bytes the
    // arena reports as free: footprint = burned null byte + live
    // (rounded) + queued free chunks, with nothing lost or double
    // counted.
    let queued: u64 =
        (MIN_CHUNK..=MAX_CHUNK).map(|size| (arena.free_chunks(size) * size) as u64).sum();
    assert_eq!(queued, arena.free_bytes(), "free queues disagree with free_bytes()");
    let live_rounded: u64 = shadow.values().map(|e| e.size.max(MIN_CHUNK) as u64).sum();
    assert_eq!(arena.used(), live_rounded, "used() disagrees with shadow live bytes");
    assert_eq!(arena.footprint(), 1 + live_rounded + queued, "footprint unaccounted for");
}

/// One full randomized pass against `arena`, leaving it empty again.
fn stress_pass(arena: &mut Arena, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shadow: BTreeMap<u64, Shadow> = BTreeMap::new();

    for op in 0..OPS_PER_PASS {
        let roll = rng.gen_range(0u32..100);
        if roll < 55 || shadow.is_empty() {
            // Alloc, biased so the population keeps growing.
            let size = rng.gen_range(1usize..=MAX_CHUNK);
            let offset = arena.alloc(size);
            let contents = fill_pattern(&mut rng, size);
            arena.bytes_mut(offset, size).copy_from_slice(&contents);
            let prev = shadow.insert(offset, Shadow { size, contents });
            assert!(prev.is_none(), "alloc returned live offset {offset}");
        } else if roll < 80 {
            // Free a random live chunk. The allocator stores its
            // free-queue next pointer in the first bytes of the freed
            // chunk, so the shadow entry is dropped, not kept.
            let idx = rng.gen_range(0..shadow.len());
            let offset = *shadow.keys().nth(idx).unwrap();
            let entry = shadow.remove(&offset).unwrap();
            arena.free(offset, entry.size);
        } else if roll < 95 {
            // Realloc a random live chunk to a new size; the common
            // prefix must survive the move (or non-move).
            let idx = rng.gen_range(0..shadow.len());
            let offset = *shadow.keys().nth(idx).unwrap();
            let entry = shadow.remove(&offset).unwrap();
            let new_size = rng.gen_range(1usize..=MAX_CHUNK);
            let new_offset = arena.realloc(offset, entry.size, new_size);
            let kept = entry.size.min(new_size);
            assert_eq!(
                arena.bytes(new_offset, kept),
                &entry.contents[..kept],
                "realloc {offset}->{new_offset} lost the common prefix"
            );
            // Regrow the tail deterministically and record the result.
            let mut contents = entry.contents[..kept].to_vec();
            contents.extend(fill_pattern(&mut rng, new_size - kept));
            arena.bytes_mut(new_offset, new_size).copy_from_slice(&contents);
            let prev = shadow.insert(new_offset, Shadow { size: new_size, contents });
            assert!(prev.is_none(), "realloc returned live offset {new_offset}");
        } else {
            // Compact. Live chunks must never move, so every shadow
            // offset stays valid verbatim.
            let before = arena.footprint();
            let reclaimed = arena.compact();
            assert_eq!(arena.footprint(), before - reclaimed);
            check_contents(arena, &shadow);
        }

        if op % 64 == 0 {
            check_invariants(arena, &shadow);
            check_contents(arena, &shadow);
        }
    }

    check_invariants(arena, &shadow);
    check_contents(arena, &shadow);

    // Drain everything through the normal path before handing the arena
    // back, so the free queues (not just reset) get the full workout.
    for (offset, entry) in std::mem::take(&mut shadow) {
        arena.free(offset, entry.size);
    }
    assert_eq!(arena.live_allocs(), 0);
    assert_eq!(arena.used(), 0);
}

#[test]
fn arena_matches_shadow_model_across_seeds() {
    for seed in SEEDS {
        let mut arena = Arena::new();
        stress_pass(&mut arena, seed);
    }
}

#[test]
fn recycled_arena_behaves_like_a_fresh_one() {
    for seed in SEEDS {
        let mut arena = Arena::new();
        stress_pass(&mut arena, seed);

        let capacity_before = arena.footprint();
        arena.reset();
        assert_eq!(arena.footprint(), 1, "reset must drop back to the burned null byte");
        assert_eq!(arena.stats().resets, 1);

        // Second pass on the recycled arena, different op stream.
        stress_pass(&mut arena, seed ^ 0x5EED);
        assert!(
            arena.stats().allocs > 0 && capacity_before > 1,
            "both passes must have exercised the arena"
        );
    }
}

/// `reset()` with live allocations must invalidate them wholesale — the
/// recycling path in the miner resets between conditional trees without
/// freeing node by node.
#[test]
fn reset_discards_live_allocations_and_allows_reuse() {
    let mut arena = Arena::new();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let size = rng.gen_range(1usize..=MAX_CHUNK);
        arena.alloc(size);
    }
    assert_eq!(arena.live_allocs(), 200);
    arena.reset();
    assert_eq!(arena.live_allocs(), 0);
    assert_eq!(arena.used(), 0);
    assert_eq!(arena.free_bytes(), 0);
    // And it allocates again from offset 1 as a fresh arena would.
    assert_eq!(arena.alloc(8), 1);
}
