//! Cross-algorithm mining equivalence: every miner in the workspace must
//! produce exactly the same frequent itemsets with the same supports.

use cfp_baselines::oracle;
use cfp_data::TransactionDb;
use cfp_integration::{fingerprint, full_roster, mine_sorted};

#[test]
fn all_miners_match_oracle_on_textbook_example() {
    let db = TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);
    for minsup in 1..=4 {
        let expect = oracle::frequent_itemsets(&db, minsup);
        for m in full_roster() {
            assert_eq!(
                mine_sorted(m.as_ref(), &db, minsup),
                expect,
                "{} at minsup {minsup}",
                m.name()
            );
        }
    }
}

#[test]
fn all_miners_handle_degenerate_inputs() {
    let cases: Vec<TransactionDb> = vec![
        TransactionDb::new(),
        TransactionDb::from_rows(&[vec![0u32]]),
        TransactionDb::from_rows(&[vec![], vec![], vec![]]),
        TransactionDb::from_rows(&[vec![7u32, 7, 7]]),
        TransactionDb::from_rows(&vec![vec![0u32, 1, 2]; 5]),
        // Sparse ids far apart.
        TransactionDb::from_rows(&[vec![5u32, 100_000], vec![100_000]]),
    ];
    for (i, db) in cases.iter().enumerate() {
        for minsup in [1u64, 2, 10] {
            let reference = mine_sorted(full_roster()[0].as_ref(), db, minsup);
            for m in full_roster().iter().skip(1) {
                assert_eq!(
                    mine_sorted(m.as_ref(), db, minsup),
                    reference,
                    "case {i} minsup {minsup} miner {}",
                    m.name()
                );
            }
        }
    }
}

#[test]
fn all_miners_agree_on_profiles_at_high_support() {
    for name in ["retail-like", "kosarak-like", "quest1"] {
        let p = cfp_data::profiles::by_name(name).unwrap();
        let db = p.generate();
        let minsup = p.absolute_support(&db, 0);
        let roster = full_roster();
        let reference = fingerprint(roster[0].as_ref(), &db, minsup);
        assert!(reference.0 > 0, "{name}: no itemsets at high support");
        for m in roster.iter().skip(1) {
            assert_eq!(fingerprint(m.as_ref(), &db, minsup), reference, "{name} vs {}", m.name());
        }
    }
}

/// Property tests require the optional `proptest` dependency,
/// which offline builds cannot fetch. Enable with
/// `--features proptest` after restoring the dev-dependency
/// (see README § Offline builds).
#[cfg(feature = "proptest")]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random small databases: every miner equals the brute-force oracle.
        #[test]
        fn prop_all_miners_match_oracle(
            rows in proptest::collection::vec(
                proptest::collection::btree_set(0u32..9, 0..7),
                1..40
            ),
            minsup in 1u64..5,
        ) {
            let rows: Vec<Vec<u32>> = rows.into_iter().map(|s| s.into_iter().collect()).collect();
            let db = TransactionDb::from_rows(&rows);
            let expect = oracle::frequent_itemsets(&db, minsup);
            for m in full_roster() {
                prop_assert_eq!(
                    mine_sorted(m.as_ref(), &db, minsup),
                    expect.clone(),
                    "miner {}", m.name()
                );
            }
        }
    }
}
