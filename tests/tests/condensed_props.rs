//! Structural properties of the condensed-output engine.
//!
//! The differential suite proves the engine equals the post-hoc oracle;
//! this suite proves the *relationships the theory demands* hold on the
//! engine's own output, so a bug that broke oracle and engine in the
//! same way would still be caught:
//!
//! - maximal ⊆ closed ⊆ frequent (as sets, with matching supports);
//! - every frequent itemset has a closed superset of equal support
//!   (closure soundness: nothing was condensed away irrecoverably);
//! - every frequent itemset is a subset of some maximal itemset;
//! - top-k returns exactly the k highest supports of the full set, and
//!   ties break deterministically (ascending lexicographic itemset),
//!   so two runs — and any prefix k' < k — agree byte for byte.

use cfp_core::{CfpGrowthMiner, CollectSink, MineOpts, OutputMode};
use cfp_data::rng::{Rng, StdRng};
use cfp_data::zipf::Zipf;
use cfp_data::{Item, TransactionDb};
use std::collections::BTreeSet;

const SEEDS: u64 = 32;

/// Seeded database generator: moderate sizes with heavy support ties
/// (small item universe, repeated rows) so closure and tie-break paths
/// are exercised hard.
fn generate(seed: u64) -> (TransactionDb, u64) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_items = rng.gen_range(2usize..=10);
    let n_txn = rng.gen_range(4usize..=80);
    let zipf = Zipf::new(n_items, 0.5 + rng.gen::<f64>());
    let mut db = TransactionDb::new();
    for _ in 0..n_txn {
        let target = rng.gen_range(1usize..=n_items);
        let mut row = BTreeSet::new();
        for _ in 0..target {
            row.insert(zipf.sample(&mut rng) as Item);
        }
        let row: Vec<Item> = row.into_iter().collect();
        // Duplicate some rows to force support ties.
        let copies = if rng.gen_bool(0.3) { rng.gen_range(2usize..=4) } else { 1 };
        for _ in 0..copies {
            db.push(&row);
        }
    }
    let minsup = rng.gen_range(1..=(db.len() as u64 / 3).max(2));
    (db, minsup)
}

fn mine_mode(db: &TransactionDb, minsup: u64, output: OutputMode) -> Vec<(Vec<Item>, u64)> {
    let mut sink = CollectSink::new();
    CfpGrowthMiner::new()
        .try_mine_with(db, minsup, &mut sink, &MineOpts { output, ..MineOpts::default() })
        .unwrap_or_else(|e| panic!("{output} mining failed: {e}"));
    sink.itemsets
}

fn is_subset(sub: &[Item], sup: &[Item]) -> bool {
    let set: BTreeSet<&Item> = sup.iter().collect();
    sub.iter().all(|i| set.contains(i))
}

#[test]
fn maximal_is_a_subset_of_closed_is_a_subset_of_frequent() {
    for seed in 0..SEEDS {
        let (db, minsup) = generate(seed);
        let full: BTreeSet<(Vec<Item>, u64)> =
            mine_mode(&db, minsup, OutputMode::All).into_iter().collect();
        let closed: BTreeSet<(Vec<Item>, u64)> =
            mine_mode(&db, minsup, OutputMode::Closed).into_iter().collect();
        let maximal: BTreeSet<(Vec<Item>, u64)> =
            mine_mode(&db, minsup, OutputMode::Maximal).into_iter().collect();
        for entry in &maximal {
            assert!(closed.contains(entry), "seed {seed}: maximal itemset {entry:?} is not closed");
        }
        for entry in &closed {
            assert!(
                full.contains(entry),
                "seed {seed}: closed itemset {entry:?} is not frequent (or has a wrong support)"
            );
        }
        assert!(closed.len() <= full.len());
        assert!(maximal.len() <= closed.len());
    }
}

#[test]
fn every_frequent_itemset_has_a_closed_superset_of_equal_support() {
    let mut nontrivial = 0u64;
    for seed in 0..SEEDS {
        let (db, minsup) = generate(seed);
        let full = mine_mode(&db, minsup, OutputMode::All);
        let closed = mine_mode(&db, minsup, OutputMode::Closed);
        if full.len() > closed.len() {
            nontrivial += 1;
        }
        for (items, support) in &full {
            assert!(
                closed.iter().any(|(c, s)| s == support && is_subset(items, c)),
                "seed {seed}: frequent itemset {items:?} (support {support}) has no closed \
                 superset of equal support"
            );
        }
    }
    assert!(nontrivial > 0, "no seed ever condensed anything — generator too weak");
}

#[test]
fn every_frequent_itemset_is_covered_by_a_maximal_itemset() {
    for seed in 0..SEEDS {
        let (db, minsup) = generate(seed);
        let full = mine_mode(&db, minsup, OutputMode::All);
        let maximal = mine_mode(&db, minsup, OutputMode::Maximal);
        for (items, _) in &full {
            assert!(
                maximal.iter().any(|(m, _)| is_subset(items, m)),
                "seed {seed}: frequent itemset {items:?} is not covered by any maximal itemset"
            );
        }
        // Maximality is an antichain: no maximal itemset contains another.
        for (i, (a, _)) in maximal.iter().enumerate() {
            for (b, _) in maximal.iter().skip(i + 1) {
                assert!(
                    !is_subset(a, b) && !is_subset(b, a),
                    "seed {seed}: maximal itemsets {a:?} and {b:?} are nested"
                );
            }
        }
    }
}

/// Out-of-core condensed mining: the spill rung mines each partition
/// with exact global supports, reconciles cross-partition subsumption
/// in descending range order, and (for top-k) selects winners globally
/// after all partitions — so its result must equal the in-memory
/// engine's on every shape.
#[test]
fn spill_rung_matches_in_memory_for_every_output_mode() {
    use cfp_core::{RecoveryPolicy, Supervisor};
    let mut multi_partition = 0u64;
    for seed in 0..12 {
        let (db, minsup) = generate(seed);
        for output in [OutputMode::Closed, OutputMode::Maximal, OutputMode::TopK(6)] {
            let want = mine_mode(&db, minsup, output);
            let parent = std::env::temp_dir()
                .join(format!("cfp-condensed-spill-{}-{seed}-{output}", std::process::id()));
            let _ = std::fs::remove_dir_all(&parent);
            let sup = Supervisor {
                spill_dir: Some(parent.clone()),
                output,
                ..Supervisor::new(RecoveryPolicy::Spill)
            };
            let mut sink = CollectSink::new();
            let (r, report) = sup.mine_out_of_core(&db, minsup, &mut sink);
            r.unwrap_or_else(|e| panic!("seed {seed} {output}: spill mining failed: {e}"));
            if report.final_partitions >= 2 {
                multi_partition += 1;
            }
            let _ = std::fs::remove_dir_all(&parent);
            if matches!(output, OutputMode::TopK(_)) {
                // Global top-k selection drains in deterministic order.
                assert_eq!(sink.itemsets, want, "seed {seed} {output}");
            } else {
                let mut got = sink.itemsets;
                let mut want = want;
                got.sort();
                want.sort();
                assert_eq!(got, want, "seed {seed} {output}");
            }
        }
    }
    assert!(
        multi_partition > 0,
        "no run ever split into multiple partitions — cross-partition reconcile untested"
    );
}

#[test]
fn topk_returns_exactly_the_k_highest_supports_with_deterministic_ties() {
    for seed in 0..SEEDS {
        let (db, minsup) = generate(seed);
        let mut full = mine_mode(&db, minsup, OutputMode::All);
        // The reference order: support descending, itemset ascending.
        full.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for k in [1usize, 2, 5, full.len() + 3] {
            let got = mine_mode(&db, minsup, OutputMode::TopK(k));
            let want: Vec<_> = full.iter().take(k).cloned().collect();
            assert_eq!(got, want, "seed {seed}, k {k}: top-k diverged from the sorted full set");
            // Determinism: an independent run reproduces it byte for byte.
            assert_eq!(got, mine_mode(&db, minsup, OutputMode::TopK(k)), "seed {seed}, k {k}");
        }
        // Prefix coherence: top-(k-1) is a prefix of top-k, so ties can
        // never reshuffle under a different k.
        let top5 = mine_mode(&db, minsup, OutputMode::TopK(5));
        let top4 = mine_mode(&db, minsup, OutputMode::TopK(4));
        assert_eq!(&top5[..top5.len().min(4)], &top4[..], "seed {seed}: k=4 not a prefix of k=5");
    }
}
