//! Integration tests of the extension layers: parallel mining, mining
//! images, streaming file mining, and rule generation — all cross-checked
//! against the sequential in-memory pipeline on realistic profiles.

use cfp_core::{
    mine_file, CfpGrowthMiner, CollectSink, CountingSink, Miner, MiningImage,
    ParallelCfpGrowthMiner,
};
use cfp_data::{fimi, profiles};
use cfp_integration::fingerprint;
use cfp_rules::{closed_itemsets, maximal_itemsets, RuleMiner};

#[test]
fn parallel_equals_sequential_on_profiles() {
    for name in ["retail-like", "kosarak-like"] {
        let p = profiles::by_name(name).unwrap();
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let seq = fingerprint(&CfpGrowthMiner::new(), &db, minsup);
        for threads in [2, 5] {
            let par = fingerprint(&ParallelCfpGrowthMiner::new(threads), &db, minsup);
            assert_eq!(par, seq, "{name} with {threads} threads");
        }
    }
}

#[test]
fn image_round_trip_on_a_profile() {
    let p = profiles::by_name("retail-like").unwrap();
    let db = p.generate();
    let minsup = p.absolute_support(&db, 1);

    let image = MiningImage::build(&db, minsup);
    let mut bytes = Vec::new();
    image.write_to(&mut bytes).unwrap();
    let loaded = MiningImage::read_from(bytes.as_slice()).unwrap();

    let mut from_image = CountingSink::new();
    loaded.mine(minsup, &mut from_image);
    let direct = fingerprint(&CfpGrowthMiner::new(), &db, minsup);
    assert_eq!((from_image.count, from_image.support_sum, from_image.item_sum), direct);

    // The serialized image is small: well under 8 bytes per node.
    assert!((bytes.len() as u64) < 8 * loaded.array().num_nodes());
}

#[test]
fn file_mining_equals_in_memory_on_a_profile() {
    let p = profiles::by_name("kosarak-like").unwrap();
    let db = p.generate();
    let minsup = p.absolute_support(&db, 0);

    let dir = std::env::temp_dir().join("cfp_integration_ext");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kosarak.dat");
    fimi::write_file(&db, &path).unwrap();

    let mut from_file = CountingSink::new();
    let stats = mine_file(&CfpGrowthMiner::new(), &path, minsup, &mut from_file).unwrap();
    let direct = fingerprint(&CfpGrowthMiner::new(), &db, minsup);
    assert_eq!((from_file.count, from_file.support_sum, from_file.item_sum), direct);
    assert!(stats.tree_nodes > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn rules_are_consistent_with_supports() {
    let p = profiles::by_name("retail-like").unwrap();
    let db = p.generate();
    let minsup = p.absolute_support(&db, 0);
    let mut sink = CollectSink::new();
    CfpGrowthMiner::new().mine(&db, minsup, &mut sink);
    let itemsets = sink.into_sorted();

    let miner = RuleMiner::new(&itemsets, db.len() as u64);
    let rules = miner.rules(0.6);
    assert!(!rules.is_empty(), "expected confident rules on skewed data");
    for r in rules.iter().take(50) {
        // Verify confidence against raw scans.
        let ant_sup =
            db.iter().filter(|t| r.antecedent.iter().all(|i| t.contains(i))).count() as f64;
        let both = db
            .iter()
            .filter(|t| {
                r.antecedent.iter().all(|i| t.contains(i))
                    && r.consequent.iter().all(|i| t.contains(i))
            })
            .count() as f64;
        assert!((r.confidence - both / ant_sup).abs() < 1e-9, "{r:?}");
    }
}

#[test]
fn condensed_representations_nest_on_a_profile() {
    let p = profiles::by_name("quest1").unwrap();
    let db = p.generate();
    let minsup = p.absolute_support(&db, 1);
    let mut sink = CollectSink::new();
    CfpGrowthMiner::new().mine(&db, minsup, &mut sink);
    let all = sink.into_sorted();
    let closed = closed_itemsets(&all);
    let maximal = maximal_itemsets(&all);
    assert!(maximal.len() <= closed.len());
    assert!(closed.len() <= all.len());
    assert!(!maximal.is_empty());
    // Closed itemsets preserve the support of everything.
    let closed_set: std::collections::HashSet<&Vec<u32>> = closed.iter().map(|(i, _)| i).collect();
    for m in &maximal {
        assert!(closed_set.contains(&m.0));
    }
}
