//! Sink behaviour across miners and determinism of the whole stack.

use cfp_core::{CfpGrowthMiner, LengthHistogramSink, Miner, TopKSink};
use cfp_data::{profiles, TransactionDb};
use cfp_fptree::FpGrowthMiner;
use cfp_integration::{fingerprint, mine_sorted};

fn sample_db() -> TransactionDb {
    profiles::by_name("retail-like").unwrap().generate()
}

#[test]
fn topk_agrees_between_cfp_and_fp() {
    let db = sample_db();
    let minsup = 300;
    let mut a = TopKSink::new(25);
    CfpGrowthMiner::new().mine(&db, minsup, &mut a);
    let mut b = TopKSink::new(25);
    FpGrowthMiner::new().mine(&db, minsup, &mut b);
    let (a, b) = (a.into_sorted(), b.into_sorted());
    assert_eq!(a.len(), 25);
    // Supports must match pairwise (itemsets may tie arbitrarily).
    let sa: Vec<u64> = a.iter().map(|(_, s)| *s).collect();
    let sb: Vec<u64> = b.iter().map(|(_, s)| *s).collect();
    assert_eq!(sa, sb);
    // And supports are non-increasing.
    assert!(sa.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn length_histogram_agrees_between_cfp_and_fp() {
    let db = sample_db();
    let mut a = LengthHistogramSink::new();
    CfpGrowthMiner::new().mine(&db, 240, &mut a);
    let mut b = LengthHistogramSink::new();
    FpGrowthMiner::new().mine(&db, 240, &mut b);
    assert_eq!(a.buckets, b.buckets);
    assert!(a.buckets.len() >= 3, "should find itemsets of cardinality >= 2");
}

#[test]
fn mining_is_deterministic_across_runs() {
    let db = sample_db();
    let m = CfpGrowthMiner::new();
    let first = mine_sorted(&m, &db, 400);
    for _ in 0..3 {
        assert_eq!(mine_sorted(&m, &db, 400), first);
    }
}

#[test]
fn lower_support_is_a_superset() {
    let db = sample_db();
    let m = CfpGrowthMiner::new();
    let loose = mine_sorted(&m, &db, 200);
    let strict = mine_sorted(&m, &db, 500);
    // Every itemset at the strict level appears identically at the loose
    // level (anti-monotonicity of support).
    let mut j = 0;
    for pair in &strict {
        while j < loose.len() && &loose[j] != pair {
            j += 1;
        }
        assert!(j < loose.len(), "missing {pair:?} at lower support");
    }
    assert!(loose.len() > strict.len());
}

#[test]
fn support_counts_are_exact_at_every_level() {
    // Spot-verify supports reported by CFP-growth against direct scans.
    let db = sample_db();
    let m = CfpGrowthMiner::new();
    let got = mine_sorted(&m, &db, 600);
    assert!(!got.is_empty());
    for (itemset, support) in got.iter().step_by(17) {
        let actual = db.iter().filter(|t| itemset.iter().all(|i| t.contains(i))).count() as u64;
        assert_eq!(actual, *support, "itemset {itemset:?}");
    }
}

#[test]
fn single_path_option_is_behaviour_preserving_at_scale() {
    let db = profiles::by_name("quest1").unwrap().generate();
    let minsup = 1_000;
    let with =
        fingerprint(&CfpGrowthMiner { single_path_opt: true, ..Default::default() }, &db, minsup);
    let without =
        fingerprint(&CfpGrowthMiner { single_path_opt: false, ..Default::default() }, &db, minsup);
    assert_eq!(with, without);
}
