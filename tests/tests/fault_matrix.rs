//! The fault matrix: every injected failure class in the
//! read → count → build → convert → mine pipeline must surface as a
//! structured [`CfpError`] with its documented exit code — never as a
//! process-killing panic (`should_panic` is deliberately absent here).
//!
//! Compiled only with the `fault` feature, which arms the cfp-fault
//! failpoints in every layer:
//! `cargo test -p cfp-integration --features fault`.

#![cfg(feature = "fault")]

use cfp_core::growth::try_build_tree;
use cfp_core::{CfpGrowthMiner, CountingSink, ParallelCfpGrowthMiner, RecoveryPolicy, Supervisor};
use cfp_data::double_buffer::DoubleBufferedReader;
use cfp_data::{fimi, CfpError, ItemRecoder, Miner, ParsePolicy, TransactionDb};
use cfp_fault::{clear_all, configure, fired, FaultMode};
use cfp_tree::CfpTree;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The failpoint registry is process-global, so every test in this binary
/// serialises through one lock and disarms on entry and exit.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn armed() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_all();
    guard
}

fn textbook_db() -> TransactionDb {
    TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ])
}

/// Class 1 — allocation failure inside the arena ("memman.alloc"):
/// the tree builder reports structured memory exhaustion naming the
/// build phase; with the site disarmed the same build succeeds.
#[test]
fn injected_alloc_failure_fails_the_build_structurally() {
    let _g = armed();
    let db = textbook_db();
    let recoder = ItemRecoder::scan(&db, 2);

    configure("memman.alloc", FaultMode::Nth(1));
    let err = CfpTree::try_from_db(&db, &recoder, None).expect_err("armed build must fail");
    assert_eq!(fired("memman.alloc"), 1);
    match &err {
        CfpError::MemoryExhausted { phase, .. } => assert_eq!(*phase, "build"),
        other => panic!("expected MemoryExhausted, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 4);

    clear_all();
    let tree = CfpTree::try_from_db(&db, &recoder, None).expect("disarmed build succeeds");
    assert!(tree.num_nodes() > 0);
}

/// Class 1, later in the build — the failure can strike mid-insert, not
/// just on the first allocation, and is still contained.
#[test]
fn injected_alloc_failure_mid_build_is_still_structured() {
    let _g = armed();
    let db = textbook_db();
    let recoder = ItemRecoder::scan(&db, 2);

    configure("memman.alloc", FaultMode::AfterN(4));
    let err = CfpTree::try_from_db(&db, &recoder, None).expect_err("armed build must fail");
    assert!(matches!(err, CfpError::MemoryExhausted { phase: "build", .. }), "{err:?}");
    clear_all();
}

/// Class 2 — a real budget overrun (no failpoint): `try_mine` under a
/// 16-byte cap reports exhaustion citing the phase and the limit, and
/// the identical uncapped retry mines normally.
#[test]
fn budget_overrun_reports_limit_and_uncapped_retry_succeeds() {
    let _g = armed();
    let db = textbook_db();

    let capped = CfpGrowthMiner { single_path_opt: true, mem_budget: Some(16) };
    let mut sink = CountingSink::new();
    let err = capped.try_mine(&db, 2, &mut sink).expect_err("16 bytes cannot hold the tree");
    match &err {
        CfpError::MemoryExhausted { phase, limit, .. } => {
            assert_eq!(*phase, "build");
            assert_eq!(*limit, 16);
        }
        other => panic!("expected MemoryExhausted, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 4);

    let uncapped = CfpGrowthMiner { single_path_opt: true, mem_budget: None };
    let mut sink = CountingSink::new();
    let stats = uncapped.try_mine(&db, 2, &mut sink).expect("uncapped retry");
    assert_eq!(sink.count, 13);
    assert_eq!(stats.itemsets, 13);
}

/// Class 3 — a worker panic inside parallel mining ("core.worker"):
/// contained at the thread boundary, reported as `WorkerPanic`, and the
/// process stays healthy enough to rerun the same mine successfully.
#[test]
fn injected_worker_panic_is_contained_and_structured() {
    let _g = armed();
    let db = textbook_db();
    let miner = ParallelCfpGrowthMiner::new(4);

    configure("core.worker", FaultMode::Nth(1));
    let mut sink = CountingSink::new();
    let err = miner.try_mine(&db, 2, &mut sink).expect_err("armed worker must fail");
    assert_eq!(fired("core.worker"), 1);
    match &err {
        CfpError::WorkerPanic { worker, message } => {
            assert!(*worker < 4, "worker index {worker} out of range");
            assert!(message.contains("injected worker fault"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 5);

    clear_all();
    let mut sink = CountingSink::new();
    miner.try_mine(&db, 2, &mut sink).expect("disarmed retry");
    assert_eq!(sink.count, 13);
}

/// Class 3, every worker poisoned: even when the failpoint keeps firing
/// in all workers, exactly one structured error comes back (the poison
/// flag cancels the rest) and nothing escapes as a panic.
#[test]
fn all_workers_failing_still_yields_one_structured_error() {
    let _g = armed();
    let db = textbook_db();
    let miner = ParallelCfpGrowthMiner::new(4);

    configure("core.worker", FaultMode::Always);
    let mut sink = CountingSink::new();
    let err = miner.try_mine(&db, 2, &mut sink).expect_err("all workers fail");
    assert!(matches!(err, CfpError::WorkerPanic { .. }), "{err:?}");
    clear_all();
}

/// Class 4 — an I/O failure mid-stream ("data.read"): the double-buffered
/// reader delivers every chunk parsed before the fault, then surfaces the
/// error through `next_chunk` instead of panicking the reader thread.
#[test]
fn injected_read_failure_delivers_earlier_chunks_then_errors() {
    let _g = armed();
    let mut text = String::new();
    for i in 0..10 {
        text.push_str(&format!("{} {}\n", i, i + 100));
    }

    // Fire on the 5th line read: chunks of 2 mean two full chunks
    // (transactions 0..4) are already in flight when the fault strikes.
    configure("data.read", FaultMode::Nth(5));
    let mut rdr = DoubleBufferedReader::with_policy(
        std::io::Cursor::new(text.into_bytes()),
        2,
        ParsePolicy::Strict,
    );
    let mut delivered = 0;
    let err = loop {
        match rdr.next_chunk() {
            Ok(Some(chunk)) => {
                delivered += chunk.len();
                rdr.recycle(chunk);
            }
            Ok(None) => panic!("stream must end in the injected error"),
            Err(e) => break e,
        }
    };
    assert_eq!(delivered, 4, "chunks before the fault are still delivered");
    assert!(err.to_string().contains("injected I/O failure"), "{err}");
    assert_eq!(fired("data.read"), 1);
    clear_all();
}

/// Class 5 — malformed input (no failpoint needed): strict parsing cites
/// the offending line with exit code 3; skip parsing mines the remainder
/// and accounts for the damage.
#[test]
fn malformed_input_is_structured_in_both_policies() {
    let _g = armed();
    let text = "1 2\n1 notanitem 2\n1 2\n";

    let err = fimi::read_with_policy(text.as_bytes(), ParsePolicy::Strict)
        .expect_err("strict must reject");
    match &err {
        CfpError::Parse { line, message } => {
            assert_eq!(*line, 2);
            assert!(message.contains("notanitem"), "{message}");
        }
        other => panic!("expected Parse, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 3);

    let (db, stats) = fimi::read_with_policy(text.as_bytes(), ParsePolicy::Skip).expect("skip");
    assert_eq!(db.len(), 2);
    assert_eq!(stats.skipped_lines, 1);
    assert_eq!(stats.bad_tokens, 1);

    // The surviving transactions still mine end to end.
    let mut sink = CountingSink::new();
    let (recoder, tree) = try_build_tree(&db, 2, None).expect("build");
    assert!(tree.num_nodes() > 0);
    CfpGrowthMiner::new().try_mine(&db, 2, &mut sink).expect("mine");
    assert_eq!(sink.count, 3); // {1}, {2}, {1 2}
    assert_eq!(recoder.num_items(), 2);
}

/// Class 6 — the recovery ladder under a fault that never clears: every
/// rung is attempted at most once, in order, and when the whole ladder
/// fails the supervisor returns the final structured error instead of
/// looping forever.
#[test]
fn persistent_alloc_fault_climbs_each_rung_exactly_once() {
    let _g = armed();
    let db = textbook_db();

    configure("memman.alloc", FaultMode::Always);
    let supervisor = Supervisor {
        threads: 4,
        mem_budget: Some(1 << 20),
        ..Supervisor::new(RecoveryPolicy::Partition)
    };
    let mut sink = CountingSink::new();
    let (result, report) = supervisor.mine(&db, 2, &mut sink);
    let err = result.expect_err("nothing can allocate while the site is armed");
    assert_eq!(err.exit_code(), 4, "{err:?}");
    assert!(!report.recovered);
    let rungs: Vec<&str> = report.rungs.iter().map(|r| r.rung).collect();
    assert_eq!(rungs, ["retry", "degrade", "partition"], "each rung once, in order");
    assert!(report.rungs.iter().all(|r| !r.succeeded));
    assert_eq!(sink.count, 0, "failed attempts must not leak output to the caller");

    // Disarmed, the identical supervisor mines healthily with no rungs.
    clear_all();
    let mut sink = CountingSink::new();
    let (result, report) = supervisor.mine(&db, 2, &mut sink);
    result.expect("disarmed retry");
    assert!(report.rungs.is_empty());
    assert_eq!(sink.count, 13);
}

/// Class 7 — a wedged worker ("core.worker.stall"): the watchdog detects
/// the missing heartbeat, cancels the siblings, and reports a structured
/// timeout naming the worker — promptly, not at some OS-level deadline.
#[test]
fn stalled_worker_trips_the_watchdog_and_cancels_siblings() {
    let _g = armed();
    let db = textbook_db();
    let miner = ParallelCfpGrowthMiner {
        worker_timeout: Some(Duration::from_millis(250)),
        ..ParallelCfpGrowthMiner::new(4)
    };

    configure("core.worker.stall", FaultMode::Nth(1));
    let mut sink = CountingSink::new();
    let start = Instant::now();
    let err = miner.try_mine(&db, 2, &mut sink).expect_err("stall must trip the watchdog");
    let elapsed = start.elapsed();
    match &err {
        CfpError::WorkerTimeout { worker, waited_ms } => {
            assert!(*worker < 4, "worker index {worker} out of range");
            assert!(*waited_ms > 0, "waited_ms must report the stall window");
        }
        other => panic!("expected WorkerTimeout, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 6);
    assert!(elapsed < Duration::from_secs(10), "siblings must be cancelled promptly: {elapsed:?}");

    // Disarmed, the same watchdog-equipped miner completes healthily.
    clear_all();
    let mut sink = CountingSink::new();
    miner.try_mine(&db, 2, &mut sink).expect("disarmed retry");
    assert_eq!(sink.count, 13);
}

/// A unique spill parent directory for one test, plus the supervisor
/// that spills into it. Each spill-rung test asserts the parent is left
/// empty — the per-run subdirectory must vanish on every exit path.
fn spill_setup(tag: &str) -> (std::path::PathBuf, Supervisor) {
    let parent = std::env::temp_dir().join(format!("cfp-fault-spill-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&parent);
    let sup =
        Supervisor { spill_dir: Some(parent.clone()), ..Supervisor::new(RecoveryPolicy::Spill) };
    (parent, sup)
}

fn assert_spill_dir_clean(parent: &std::path::Path) {
    let leftovers = std::fs::read_dir(parent).map(|it| it.count()).unwrap_or(0);
    assert_eq!(leftovers, 0, "spill parent {parent:?} must hold no stray temp state");
    let _ = std::fs::remove_dir_all(parent);
}

/// Class 8 — ENOSPC on the very first spill write ("data.spill.write"):
/// the out-of-core rung fails as a structured `Spill` error with exit
/// code 7 naming the write, and no temp file survives. Disarmed, the
/// identical run mines the exact result.
#[test]
fn injected_enospc_on_first_spill_write_is_structured_and_clean() {
    let _g = armed();
    let db = textbook_db();
    let (parent, sup) = spill_setup("enospc");

    configure("data.spill.write", FaultMode::Nth(1));
    let mut sink = CountingSink::new();
    let (result, report) = sup.mine_out_of_core(&db, 2, &mut sink);
    let err = result.expect_err("disk-full must fail the spill rung");
    assert_eq!(fired("data.spill.write"), 1);
    match &err {
        CfpError::Spill { op, message, .. } => {
            assert_eq!(*op, "write");
            assert!(message.contains("injected disk-full"), "{message}");
        }
        other => panic!("expected Spill, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 7);
    assert!(!report.recovered);
    assert_eq!(sink.count, 0, "no partial output on failure");
    assert_spill_dir_clean(&parent);

    clear_all();
    let (parent, sup) = spill_setup("enospc-ok");
    let mut sink = CountingSink::new();
    let (result, _) = sup.mine_out_of_core(&db, 2, &mut sink);
    result.expect("disarmed spill run");
    assert_eq!(sink.count, 13);
    assert_spill_dir_clean(&parent);
}

/// Class 8 — a short write striking a later partition mid-run: already
/// spilled files do not rescue the run, the error is still structured,
/// and the whole spill directory (including the good files) is removed.
#[test]
fn short_write_mid_partition_is_structured_and_clean() {
    let _g = armed();
    let db = textbook_db();
    let (parent, sup) = spill_setup("short");

    configure("data.spill.write", FaultMode::Nth(2));
    let mut sink = CountingSink::new();
    let (result, _) = sup.mine_out_of_core(&db, 2, &mut sink);
    let err = result.expect_err("second partition's write must fail");
    assert!(matches!(err, CfpError::Spill { op: "write", .. }), "{err:?}");
    assert_eq!(err.exit_code(), 7);
    assert_eq!(sink.count, 0);
    assert_spill_dir_clean(&parent);
    clear_all();
}

/// Class 8 — a read failure while loading a partition back
/// ("data.spill.read"): structured `Spill { op: "read" }`, exit code 7,
/// clean directory.
#[test]
fn injected_spill_read_failure_is_structured_and_clean() {
    let _g = armed();
    let db = textbook_db();
    let (parent, sup) = spill_setup("read");

    configure("data.spill.read", FaultMode::Nth(1));
    let mut sink = CountingSink::new();
    let (result, _) = sup.mine_out_of_core(&db, 2, &mut sink);
    let err = result.expect_err("read fault must fail the mine phase");
    match &err {
        CfpError::Spill { op, message, .. } => {
            assert_eq!(*op, "read");
            assert!(message.contains("injected read failure"), "{message}");
        }
        other => panic!("expected Spill, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 7);
    assert_spill_dir_clean(&parent);
    clear_all();
}

/// Class 8 — a torn read ("data.spill.map" flips one loaded byte): the
/// format checksum catches the corruption and maps it to
/// `Spill { op: "map" }` instead of mining garbage.
#[test]
fn torn_spill_read_is_caught_by_the_checksum() {
    let _g = armed();
    let db = textbook_db();
    let (parent, sup) = spill_setup("torn");

    configure("data.spill.map", FaultMode::Always);
    let mut sink = CountingSink::new();
    let (result, _) = sup.mine_out_of_core(&db, 2, &mut sink);
    let err = result.expect_err("corrupt bytes must not mine");
    match &err {
        CfpError::Spill { op, message, .. } => {
            assert_eq!(*op, "map");
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("expected Spill, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 7);
    assert_spill_dir_clean(&parent);
    clear_all();
}

/// Class 8 — a worker panic inside the spill rung's mine phase
/// ("core.worker"): contained as `WorkerPanic` (exit code 5) and the
/// RAII guard still removes the spill directory on the unwind path.
#[test]
fn worker_panic_in_the_spill_rung_still_cleans_the_directory() {
    let _g = armed();
    let db = textbook_db();
    let (parent, sup) = spill_setup("panic");

    configure("core.worker", FaultMode::Nth(1));
    let mut sink = CountingSink::new();
    let (result, _) = sup.mine_out_of_core(&db, 2, &mut sink);
    let err = result.expect_err("armed worker must fail");
    assert!(matches!(err, CfpError::WorkerPanic { .. }), "{err:?}");
    assert_eq!(err.exit_code(), 5);
    assert_spill_dir_clean(&parent);
    clear_all();
}

/// Class 9 — a failing manifest commit ("core.ckpt.write"): a
/// checkpointing sink that propagates the commit failure through
/// `progress()` aborts the run with the structured `Checkpoint` error
/// (exit code 9) — mining never continues with silently absent crash
/// safety — and with the site disarmed the same save succeeds.
#[test]
fn injected_checkpoint_write_failure_aborts_structurally() {
    use cfp_core::{ckpt, CkptProgress, Manifest};

    let _g = armed();
    let db = textbook_db();
    let dir = std::env::temp_dir().join(format!("cfp-fault-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    /// Commits a manifest at every watermark, surfacing save failures
    /// through `progress()` exactly as the CLI's checkpoint sink does.
    struct CommitSink {
        inner: CountingSink,
        dir: std::path::PathBuf,
    }
    impl cfp_data::ItemsetSink for CommitSink {
        fn emit(&mut self, itemset: &[cfp_data::Item], support: u64) {
            self.inner.emit(itemset, support);
        }
        fn progress(&mut self, progress: cfp_data::MineProgress<'_>) -> Result<(), CfpError> {
            let cfp_data::MineProgress::Items { done } = progress else { return Ok(()) };
            ckpt::save(
                &self.dir,
                &Manifest {
                    input: "textbook".into(),
                    min_support: 2,
                    counts: "fnv1a:0".into(),
                    num_items: 5,
                    output: "all".into(),
                    progress: CkptProgress::Mono { items_done: done },
                    output_bytes: 0,
                    itemsets: self.inner.count,
                },
            )
            .map(|_| ())
        }
    }

    configure("core.ckpt.write", FaultMode::Nth(1));
    let mut sink = CommitSink { inner: CountingSink::new(), dir: dir.clone() };
    let err = CfpGrowthMiner::new()
        .try_mine(&db, 2, &mut sink)
        .expect_err("armed manifest commit must abort the run");
    assert_eq!(fired("core.ckpt.write"), 1);
    assert!(matches!(err, CfpError::Checkpoint { .. }), "{err:?}");
    assert_eq!(err.exit_code(), 9);
    // A fired write failure must not leave a torn manifest behind: the
    // atomic protocol fails before the rename.
    assert!(ckpt::load(&dir).unwrap_or(None).is_none(), "a failed commit left a manifest behind");

    clear_all();
    let mut sink = CommitSink { inner: CountingSink::new(), dir: dir.clone() };
    CfpGrowthMiner::new().try_mine(&db, 2, &mut sink).expect("disarmed commit must succeed");
    assert!(ckpt::load(&dir).unwrap().is_some(), "disarmed run must have committed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-class: an armed-but-never-fired probabilistic site (p = 0) must
/// not perturb mining at all — the fault harness itself is inert until a
/// trigger actually fires.
#[test]
fn armed_but_silent_sites_do_not_change_results() {
    let _g = armed();
    let db = textbook_db();

    let mut baseline = CountingSink::new();
    CfpGrowthMiner::new().try_mine(&db, 2, &mut baseline).expect("baseline");

    for site in ["memman.alloc", "core.worker", "data.read"] {
        configure(site, FaultMode::Probability { p: 0.0, seed: 7 });
    }
    let mut armed_run = CountingSink::new();
    ParallelCfpGrowthMiner::new(3)
        .try_mine(&db, 2, &mut armed_run)
        .expect("silent sites must not fail the run");
    assert_eq!(armed_run.count, baseline.count);
    clear_all();
}
