//! End-to-end pipelines: FIMI files, double-buffered reading, structure
//! conversions, and the memory claims across the full stack.

use cfp_core::{CfpGrowthMiner, CountingSink, Miner};
use cfp_data::double_buffer::DoubleBufferedReader;
use cfp_data::{fimi, profiles, ItemRecoder, TransactionDb};
use cfp_fptree::{FpGrowthMiner, FpTree};
use cfp_integration::mine_sorted;
use cfp_tree::CfpTree;

#[test]
fn fimi_file_to_itemsets() {
    let dir = std::env::temp_dir().join("cfp_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.dat");
    let db = TransactionDb::from_rows(&[
        vec![3, 1, 4],
        vec![1, 5],
        vec![9, 2, 6],
        vec![5, 3],
        vec![1, 4],
    ]);
    fimi::write_file(&db, &path).unwrap();

    let loaded = fimi::read_file(&path).unwrap();
    assert_eq!(loaded, db);
    let got = mine_sorted(&CfpGrowthMiner::new(), &loaded, 2);
    assert_eq!(got, vec![(vec![1], 3), (vec![1, 4], 2), (vec![3], 2), (vec![4], 2), (vec![5], 2)]);
    std::fs::remove_file(&path).ok();
}

#[test]
fn double_buffered_reader_feeds_identical_tree() {
    let p = profiles::by_name("retail-like").unwrap();
    let db = p.generate();
    let mut text = Vec::new();
    fimi::write(&db, &mut text).unwrap();

    // Stream through the double-buffered reader while building the tree,
    // exactly as the paper's build phase consumes input.
    let minsup = p.absolute_support(&db, 0);
    let recoder = ItemRecoder::scan(&db, minsup);
    let mut streamed = CfpTree::new(recoder.num_items());
    let mut buf = Vec::new();
    DoubleBufferedReader::with_chunk_size(std::io::Cursor::new(text), 999)
        .for_each_transaction(|t| {
            recoder.recode_transaction(t, &mut buf);
            streamed.insert(&buf, 1);
        })
        .unwrap();

    let direct = CfpTree::from_db(&db, &recoder);
    assert_eq!(streamed.num_nodes(), direct.num_nodes());
    assert_eq!(streamed.weight_total(), direct.weight_total());
    assert_eq!(streamed.arena_used(), direct.arena_used());
}

#[test]
fn conversion_preserves_structure_on_every_profile() {
    for p in profiles::all() {
        let db = p.generate();
        let minsup = p.absolute_support(&db, 1);
        let recoder = ItemRecoder::scan(&db, minsup);
        let fp = FpTree::from_db(&db, &recoder);
        let cfp = CfpTree::from_db(&db, &recoder);
        let array = cfp_core::convert(&cfp);

        assert_eq!(cfp.num_nodes(), fp.num_nodes() as u64, "{}", p.name);
        assert_eq!(array.num_nodes(), cfp.num_nodes(), "{}", p.name);
        for item in 0..recoder.num_items() as u32 {
            assert_eq!(array.item_support(item), fp.item_support(item), "{} item {item}", p.name);
            assert_eq!(cfp.item_support(item), fp.item_support(item));
        }
    }
}

#[test]
fn cfp_memory_is_an_order_of_magnitude_below_the_paper_baseline() {
    for p in profiles::all() {
        let db = p.generate();
        let minsup = p.absolute_support(&db, 2);
        let recoder = ItemRecoder::scan(&db, minsup);
        let cfp = CfpTree::from_db(&db, &recoder);
        if cfp.num_nodes() < 10_000 {
            continue;
        }
        let baseline = cfp.num_nodes() * FpTree::PAPER_NODE_BYTES as u64;
        assert!(
            cfp.arena_used() * 6 < baseline,
            "{}: cfp-tree {} vs 40B-baseline {} not even 6x smaller",
            p.name,
            cfp.arena_used(),
            baseline
        );
        let array = cfp_core::convert(&cfp);
        assert!(
            array.data_bytes() * 8 <= baseline,
            "{}: cfp-array {} vs baseline {} not 8x smaller",
            p.name,
            array.data_bytes(),
            baseline
        );
    }
}

#[test]
fn cfp_growth_peak_memory_beats_fp_growth_at_scale() {
    let p = profiles::by_name("quest1").unwrap();
    let db = p.generate();
    let minsup = p.absolute_support(&db, 1);
    let mut sink = CountingSink::new();
    let cfp = CfpGrowthMiner::new().mine(&db, minsup, &mut sink);
    let mut sink = CountingSink::new();
    let fp = FpGrowthMiner::new().mine(&db, minsup, &mut sink);
    assert!(cfp.peak_bytes * 3 < fp.peak_bytes, "cfp {} vs fp {}", cfp.peak_bytes, fp.peak_bytes);
    // Conversion is a small fraction of the total runtime (§3.5).
    assert!(cfp.convert_time < cfp.total_time() / 3);
}
