//! Property-based differential testing of the full miner matrix.
//!
//! A seeded generator produces random transaction databases sweeping
//! density, Zipf item-popularity skew, and degenerate edge shapes (empty
//! database, single-item transactions, all-identical rows). On every
//! seed, every configuration of the CFP-growth pipeline — sequential,
//! and parallel under both the static and the dynamic schedule at 1, 2,
//! and 8 threads — must produce exactly the itemsets the apriori and
//! eclat oracles produce. The dynamic schedule must additionally match
//! the sequential miner's raw emission order, not just the same set.
//!
//! Failures are collected across the whole seed range and reported with
//! the smallest failing seed and a diff summary, so a regression
//! reproduces with one deterministic seed instead of a shotgun rerun.
//!
//! Sizes are capped (≤ 14 distinct items, ≤ 120 transactions) to keep
//! the apriori oracle tractable; 64 seeds × 8 shapes still cover empty,
//! singleton, uniform, and heavy-tailed regimes.

use cfp_baselines::{AprioriMiner, EclatMiner};
use cfp_core::{CfpGrowthMiner, CollectSink, MineOpts, Miner, ParallelCfpGrowthMiner, Schedule};
use cfp_data::rng::{Rng, StdRng};
use cfp_data::zipf::Zipf;
use cfp_data::{CfpError, Item, ItemsetSink, MineProgress, TransactionDb};
use std::collections::BTreeSet;

const SEEDS: u64 = 64;

struct Case {
    db: TransactionDb,
    minsup: u64,
    shape: &'static str,
}

/// Deterministically expands `seed` into a database and support level.
/// The low bits of the seed pick the shape so every edge shape recurs
/// throughout the seed range.
fn generate(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    match seed % 8 {
        0 => Case { db: TransactionDb::new(), minsup: 1, shape: "empty" },
        1 => {
            let mut db = TransactionDb::new();
            db.push(&[rng.gen_range(0u32..100)]);
            Case { db, minsup: 1, shape: "single-item" }
        }
        2 => {
            // Every transaction identical: the tree degenerates to one
            // path (the single-path shortcut's home turf).
            let k = rng.gen_range(1usize..=10);
            let copies = rng.gen_range(1usize..=12);
            let row: Vec<Item> = (0..k as u32).map(|i| i * 3 + 1).collect();
            let mut db = TransactionDb::new();
            for _ in 0..copies {
                db.push(&row);
            }
            Case { db, minsup: rng.gen_range(1..=copies as u64), shape: "all-identical" }
        }
        _ => {
            let n_items = rng.gen_range(1usize..=14);
            let n_txn = rng.gen_range(0usize..=120);
            let skewed = rng.gen_bool(0.5);
            let zipf = Zipf::new(n_items, 0.5 + rng.gen::<f64>());
            let density = 0.2 + rng.gen::<f64>() * 0.6;
            let mut db = TransactionDb::new();
            for _ in 0..n_txn {
                let target = (n_items as f64 * density).ceil() as usize;
                let mut row = BTreeSet::new();
                for _ in 0..target {
                    let item = if skewed {
                        zipf.sample(&mut rng) as Item
                    } else {
                        rng.gen_range(0..n_items as Item)
                    };
                    row.insert(item);
                }
                db.push(&row.into_iter().collect::<Vec<_>>());
            }
            let minsup = rng.gen_range(1..=(n_txn as u64 / 4).max(2));
            Case { db, minsup, shape: if skewed { "zipf-skewed" } else { "uniform" } }
        }
    }
}

fn mine_raw(miner: &dyn Miner, db: &TransactionDb, minsup: u64) -> Vec<(Vec<Item>, u64)> {
    let mut sink = CollectSink::new();
    miner.mine(db, minsup, &mut sink);
    sink.itemsets
}

fn sorted(mut itemsets: Vec<(Vec<Item>, u64)>) -> Vec<(Vec<Item>, u64)> {
    itemsets.sort();
    itemsets
}

/// Collects itemsets while requesting cancellation as soon as the
/// watermark reaches `stop_at` completed top-level items. Also records
/// the count of itemsets emitted at each watermark, so the caller can
/// verify the interruption guarantee: everything up to the last
/// reported watermark — and nothing later — was emitted.
struct InterruptSink {
    inner: CollectSink,
    token: cfp_fault::CancelToken,
    stop_at: u64,
    /// `(watermark, itemsets emitted so far)` per progress notification.
    watermarks: Vec<(u64, usize)>,
}

impl ItemsetSink for InterruptSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.inner.emit(itemset, support);
    }

    fn progress(&mut self, progress: MineProgress<'_>) -> Result<(), CfpError> {
        if let MineProgress::Items { done } = progress {
            self.watermarks.push((done, self.inner.itemsets.len()));
            if done >= self.stop_at {
                self.token.cancel();
            }
        }
        Ok(())
    }
}

/// The interrupt-at-a-random-watermark configuration: cancel `miner`
/// after a seed-derived number of completed top-level items, resume a
/// second run with `resume_skip` at the committed watermark, and require
/// the concatenated emission streams to be byte-for-byte the reference
/// stream `seq_raw`. Exercises both the cooperative-cancellation
/// boundaries and the resume-skip arithmetic on every database shape.
fn check_interrupt_resume(
    name: &str,
    mine: &dyn Fn(&mut dyn ItemsetSink, MineOpts) -> Result<(), CfpError>,
    seq_raw: &[(Vec<Item>, u64)],
    stop_at: u64,
    problems: &mut Vec<String>,
) {
    let token = cfp_fault::CancelToken::new();
    let mut sink = InterruptSink {
        inner: CollectSink::new(),
        token: token.clone(),
        stop_at,
        watermarks: Vec::new(),
    };
    let opts = MineOpts { cancel: Some(token), ..MineOpts::default() };
    let first = mine(&mut sink, opts);
    match first {
        Ok(()) => {
            // The run finished before the target watermark (small
            // database): the stream must simply be complete and exact.
            if sink.inner.itemsets != seq_raw {
                problems.push(format!(
                    "{name}: uninterrupted-by-luck run diverged ({} vs {} itemsets)",
                    sink.inner.itemsets.len(),
                    seq_raw.len()
                ));
            }
        }
        Err(CfpError::Interrupted) => {
            let Some(&(done, at_watermark)) = sink.watermarks.last() else {
                problems.push(format!("{name}: interrupted without any watermark"));
                return;
            };
            // Interruption guarantee: the stream stands exactly at the
            // last notified watermark — nothing later leaked out.
            if sink.inner.itemsets.len() != at_watermark {
                problems.push(format!(
                    "{name}: {} itemsets emitted but the last watermark covered {at_watermark}",
                    sink.inner.itemsets.len()
                ));
                return;
            }
            let mut resumed = CollectSink::new();
            let opts = MineOpts { resume_skip: done, ..MineOpts::default() };
            if let Err(e) = mine(&mut resumed, opts) {
                problems.push(format!("{name}: resume at watermark {done} failed with {e}"));
                return;
            }
            let mut joined = sink.inner.itemsets;
            joined.extend(resumed.itemsets);
            if joined != seq_raw {
                problems.push(format!(
                    "{name}: interrupt at watermark {done} + resume diverged \
                     ({} vs {} itemsets)",
                    joined.len(),
                    seq_raw.len()
                ));
            }
        }
        Err(e) => problems.push(format!("{name}: interrupt run failed with {e}")),
    }
}

/// Summarises how `got` diverges from `oracle` (first few missing/extra
/// entries), for the failure report.
fn diff_summary(
    name: &str,
    oracle: &[(Vec<Item>, u64)],
    got: &[(Vec<Item>, u64)],
) -> Option<String> {
    if oracle == got {
        return None;
    }
    let missing: Vec<_> = oracle.iter().filter(|e| !got.contains(e)).take(4).collect();
    let extra: Vec<_> = got.iter().filter(|e| !oracle.contains(e)).take(4).collect();
    Some(format!(
        "{name}: {} itemsets vs {} expected; missing {missing:?}; extra {extra:?}",
        got.len(),
        oracle.len()
    ))
}

/// Runs every miner configuration on one seed; `Err` describes every
/// divergence found on that seed.
fn check_seed(seed: u64) -> Result<(), String> {
    let case = generate(seed);
    let oracle = sorted(mine_raw(&AprioriMiner::new(), &case.db, case.minsup));
    let mut problems: Vec<String> = Vec::new();

    let eclat = sorted(mine_raw(&EclatMiner::new(), &case.db, case.minsup));
    problems.extend(diff_summary("eclat", &oracle, &eclat));

    // The sequential CFP miner's raw emission order is the determinism
    // reference for the dynamic schedule.
    let seq_raw = mine_raw(&CfpGrowthMiner::new(), &case.db, case.minsup);
    problems.extend(diff_summary("cfp-sequential", &oracle, &sorted(seq_raw.clone())));

    for schedule in [Schedule::Static, Schedule::Dynamic] {
        for threads in [1usize, 2, 8] {
            let miner = ParallelCfpGrowthMiner { schedule, ..ParallelCfpGrowthMiner::new(threads) };
            let raw = mine_raw(&miner, &case.db, case.minsup);
            let name = format!("cfp-parallel/{}x{threads}", schedule.name());
            if schedule == Schedule::Dynamic && raw != seq_raw {
                problems.push(format!(
                    "{name}: emission order diverged from sequential ({} vs {} itemsets)",
                    raw.len(),
                    seq_raw.len()
                ));
            }
            problems.extend(diff_summary(&name, &oracle, &sorted(raw)));
        }
    }

    // Interrupt at a seed-derived watermark, then resume: the
    // concatenated streams must equal the uninterrupted sequential
    // emission exactly, both for the sequential miner and for the
    // parallel dynamic schedule (whose ordered emitter makes the same
    // watermark guarantee).
    {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00C0_FFEE);
        let stop_at = rng.gen_range(1u64..=6);
        let seq = CfpGrowthMiner::new();
        check_interrupt_resume(
            "cfp-sequential/interrupt",
            &|sink, opts| seq.try_mine_with(&case.db, case.minsup, sink, &opts).map(|_| ()),
            &seq_raw,
            stop_at,
            &mut problems,
        );
        check_interrupt_resume(
            "cfp-parallel/dynamicx4/interrupt",
            &|sink, opts| {
                let miner = ParallelCfpGrowthMiner {
                    schedule: Schedule::Dynamic,
                    cancel: opts.cancel,
                    resume_skip: opts.resume_skip,
                    ..ParallelCfpGrowthMiner::new(4)
                };
                miner.try_mine(&case.db, case.minsup, sink).map(|_| ())
            },
            &seq_raw,
            stop_at,
            &mut problems,
        );
    }

    // Out-of-core: the spill rung run directly must produce exactly the
    // in-memory result on every shape — the disk round trip is an
    // identity transformation of each partition's array.
    {
        let parent = std::env::temp_dir()
            .join(format!("cfp-differential-spill-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&parent);
        let sup = cfp_core::Supervisor {
            spill_dir: Some(parent.clone()),
            ..cfp_core::Supervisor::new(cfp_core::RecoveryPolicy::Spill)
        };
        let mut sink = CollectSink::new();
        let (r, _) = sup.mine_out_of_core(&case.db, case.minsup, &mut sink);
        match r {
            Ok(_) => problems.extend(diff_summary("cfp-spill", &oracle, &sorted(sink.itemsets))),
            Err(e) => problems.push(format!("cfp-spill: failed with {e}")),
        }
        let leftovers = std::fs::read_dir(&parent).map(|it| it.count()).unwrap_or(0);
        if leftovers != 0 {
            problems.push(format!("cfp-spill: {leftovers} stray entries left in {parent:?}"));
        }
        let _ = std::fs::remove_dir_all(&parent);
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "shape {} ({} txns, minsup {}): {}",
            case.shape,
            case.db.len(),
            case.minsup,
            problems.join("\n  ")
        ))
    }
}

/// The deterministic top-k oracle: the k highest-support itemsets of
/// the full frequent set, ties broken by ascending lexicographic
/// itemset — exactly the engine's drain order.
fn topk_oracle(full: &[(Vec<Item>, u64)], k: usize) -> Vec<(Vec<Item>, u64)> {
    let mut v = full.to_vec();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

/// Mines one seed's database through the sequential engine in `output`
/// mode.
fn mine_seq_mode(
    db: &TransactionDb,
    minsup: u64,
    output: cfp_core::OutputMode,
) -> Result<Vec<(Vec<Item>, u64)>, CfpError> {
    let mut sink = CollectSink::new();
    CfpGrowthMiner::new().try_mine_with(
        db,
        minsup,
        &mut sink,
        &MineOpts { output, ..MineOpts::default() },
    )?;
    Ok(sink.itemsets)
}

/// Runs the condensed-output matrix on one seed: for each of closed,
/// maximal, and a seed-derived topk:N, the sequential engine must match
/// the post-hoc oracle (`cfp_rules::condensed` over the apriori full
/// set), the parallel dynamic schedule must reproduce the sequential
/// emission byte for byte at 1, 2, and 8 threads, and the static
/// schedule must produce the same set.
fn check_seed_condensed(seed: u64) -> Result<(), String> {
    use cfp_core::OutputMode;
    let case = generate(seed);
    let full = sorted(mine_raw(&AprioriMiner::new(), &case.db, case.minsup));
    let k = StdRng::seed_from_u64(seed ^ 0x70F0_0D5E).gen_range(1usize..=8);
    let mut problems: Vec<String> = Vec::new();

    type OracleRows = Vec<(Vec<Item>, u64)>;
    let modes: [(OutputMode, OracleRows); 3] = [
        (OutputMode::Closed, sorted(cfp_rules::closed_itemsets(&full))),
        (OutputMode::Maximal, sorted(cfp_rules::maximal_itemsets(&full))),
        (OutputMode::TopK(k), topk_oracle(&full, k)),
    ];
    for (output, oracle) in &modes {
        let name = |cfg: &str| format!("{output}/{cfg}");
        let seq_raw = match mine_seq_mode(&case.db, case.minsup, *output) {
            Ok(raw) => raw,
            Err(e) => {
                problems.push(format!("{}: failed with {e}", name("seq")));
                continue;
            }
        };
        // Top-k drains in oracle order, so its raw emission is directly
        // comparable; the condensed modes stream in recursion order and
        // are compared as sets.
        let seq_cmp = if matches!(output, OutputMode::TopK(_)) {
            seq_raw.clone()
        } else {
            sorted(seq_raw.clone())
        };
        problems.extend(diff_summary(&name("seq"), oracle, &seq_cmp));

        for threads in [1usize, 2, 8] {
            let miner = ParallelCfpGrowthMiner {
                schedule: Schedule::Dynamic,
                output: *output,
                ..ParallelCfpGrowthMiner::new(threads)
            };
            let raw = mine_raw(&miner, &case.db, case.minsup);
            if raw != seq_raw {
                problems.push(format!(
                    "{}: emission order diverged from sequential ({} vs {} itemsets)",
                    name(&format!("dynamicx{threads}")),
                    raw.len(),
                    seq_raw.len()
                ));
            }
        }
        let miner = ParallelCfpGrowthMiner {
            schedule: Schedule::Static,
            output: *output,
            ..ParallelCfpGrowthMiner::new(4)
        };
        let raw = mine_raw(&miner, &case.db, case.minsup);
        let raw_cmp = if matches!(output, OutputMode::TopK(_)) { raw } else { sorted(raw) };
        problems.extend(diff_summary(&name("staticx4"), oracle, &raw_cmp));

        // Interrupt + resume keeps the condensed stream exact: the
        // resumed run silently re-derives the reconcile state for the
        // skipped prefix, so the concatenation must reproduce the
        // uninterrupted emission. (Top-k cannot resume — the heap has
        // no output watermark — and the CLI rejects that combination.)
        if !matches!(output, OutputMode::TopK(_)) {
            let stop_at = StdRng::seed_from_u64(seed ^ 0xC105_EDCA).gen_range(1u64..=6);
            let seq = CfpGrowthMiner::new();
            check_interrupt_resume(
                &name("seq/interrupt"),
                &|sink, opts| {
                    seq.try_mine_with(
                        &case.db,
                        case.minsup,
                        sink,
                        &MineOpts { output: *output, ..opts },
                    )
                    .map(|_| ())
                },
                &seq_raw,
                stop_at,
                &mut problems,
            );
            check_interrupt_resume(
                &name("dynamicx4/interrupt"),
                &|sink, opts| {
                    let miner = ParallelCfpGrowthMiner {
                        schedule: Schedule::Dynamic,
                        output: *output,
                        cancel: opts.cancel,
                        resume_skip: opts.resume_skip,
                        ..ParallelCfpGrowthMiner::new(4)
                    };
                    miner.try_mine(&case.db, case.minsup, sink).map(|_| ())
                },
                &seq_raw,
                stop_at,
                &mut problems,
            );
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "shape {} ({} txns, minsup {}, k {k}): {}",
            case.shape,
            case.db.len(),
            case.minsup,
            problems.join("\n  ")
        ))
    }
}

#[test]
fn every_condensed_configuration_matches_the_oracle_on_every_seed() {
    let mut failures: Vec<(u64, String)> = Vec::new();
    for seed in 0..SEEDS {
        if let Err(detail) = check_seed_condensed(seed) {
            failures.push((seed, detail));
        }
    }
    if let Some((seed, detail)) = failures.first() {
        panic!(
            "{} of {SEEDS} seeds failed; minimal failing seed {seed}:\n  {detail}\n\
             (reproduce with check_seed_condensed({seed}))",
            failures.len()
        );
    }
}

#[test]
fn every_miner_configuration_agrees_on_every_seed() {
    let mut failures: Vec<(u64, String)> = Vec::new();
    for seed in 0..SEEDS {
        if let Err(detail) = check_seed(seed) {
            failures.push((seed, detail));
        }
    }
    if let Some((seed, detail)) = failures.first() {
        panic!(
            "{} of {SEEDS} seeds failed; minimal failing seed {seed}:\n  {detail}\n\
             (reproduce with check_seed({seed}))",
            failures.len()
        );
    }
}

/// The generator itself must be deterministic, or seed reports would be
/// unreproducible.
#[test]
fn generator_is_deterministic_per_seed() {
    for seed in [0u64, 3, 17, 63] {
        let a = generate(seed);
        let b = generate(seed);
        assert_eq!(a.minsup, b.minsup);
        assert_eq!(a.db.len(), b.db.len());
        assert!(a.db.iter().eq(b.db.iter()), "seed {seed} generated different rows");
    }
}

/// The seed range must actually exercise every edge shape at least once.
#[test]
fn seed_range_covers_all_shapes() {
    let shapes: BTreeSet<&'static str> = (0..SEEDS).map(|s| generate(s).shape).collect();
    for expected in ["empty", "single-item", "all-identical", "uniform", "zipf-skewed"] {
        assert!(shapes.contains(expected), "no seed generated the {expected} shape");
    }
}
