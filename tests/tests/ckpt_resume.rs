//! Checkpoint/resume exactness and manifest robustness, exercised at
//! the library layer (the CLI end-to-end cells live in
//! `crates/cli/tests/cli.rs` and the CI kill–resume matrix).
//!
//! Three suites:
//!
//! 1. **Spill interrupt–resume differential** — the out-of-core rung is
//!    cancelled after a seed-derived number of completed partitions and
//!    resumed via [`Supervisor::mine_out_of_core_resumable`] from the
//!    watermark a checkpointing sink would have committed. The
//!    concatenated streams must equal the uninterrupted run exactly.
//! 2. **Manifest fuzz** — seeded random truncations and byte flips of a
//!    saved manifest must either be rejected by the strict loader or
//!    round-trip to a manifest equal to the original (whitespace-only
//!    damage); never a panic, never a silently different manifest.
//! 3. **Resume-skip boundary arithmetic** — resuming at watermark 0,
//!    at the final watermark, and past the end behave as documented.

use cfp_core::ckpt::{self, Manifest};
use cfp_core::{
    CfpGrowthMiner, CkptProgress, CollectSink, MineOpts, Miner, RecoveryPolicy, Supervisor,
};
use cfp_data::rng::{Rng, StdRng};
use cfp_data::{CfpError, Item, ItemRecoder, ItemsetSink, MineProgress, TransactionDb};

/// A database large and skewed enough that the spill rung (under a tight
/// budget) produces several partitions.
fn spillable_db(seed: u64) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = TransactionDb::new();
    for _ in 0..800 {
        let mut row = std::collections::BTreeSet::new();
        for item in 0..40u32 {
            if rng.gen::<f64>() < 1.2 / (item as f64 / 5.0 + 1.0) {
                row.insert(item);
            }
        }
        if !row.is_empty() {
            db.push(&row.into_iter().collect::<Vec<_>>());
        }
    }
    db
}

/// One recorded `SpillParts` watermark: completed partitions, surviving
/// ranges, itemsets emitted so far.
type SpillMark = (u64, Vec<(u32, u32)>, usize);

/// Collects itemsets, recording each `SpillParts` watermark and
/// cancelling once `stop_at` partitions have completed.
struct SpillInterruptSink {
    inner: CollectSink,
    token: cfp_fault::CancelToken,
    stop_at: u64,
    watermarks: Vec<SpillMark>,
}

impl ItemsetSink for SpillInterruptSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.inner.emit(itemset, support);
    }

    fn progress(&mut self, progress: MineProgress<'_>) -> Result<(), CfpError> {
        if let MineProgress::SpillParts { done, remaining } = progress {
            self.watermarks.push((done, remaining.to_vec(), self.inner.itemsets.len()));
            if done >= self.stop_at {
                self.token.cancel();
            }
        }
        Ok(())
    }
}

fn spill_supervisor(dir: &std::path::Path, cancel: Option<cfp_fault::CancelToken>) -> Supervisor {
    Supervisor {
        spill_dir: Some(dir.to_path_buf()),
        mem_budget: Some(96 * 1024),
        cancel,
        ..Supervisor::new(RecoveryPolicy::Spill)
    }
}

/// Suite 1: kill the spill rung at partition watermarks across seeds and
/// resume; the joined stream must match the uninterrupted one exactly.
#[test]
fn spill_interrupt_resume_is_exact_across_seeds() {
    let mut failures = Vec::new();
    let mut interrupted_once = false;
    for seed in 0..8u64 {
        let db = spillable_db(seed);
        let minsup = 8;
        let parent =
            std::env::temp_dir().join(format!("cfp-ckpt-resume-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&parent);

        // Uninterrupted reference (spill rung, same configuration).
        let mut reference = CollectSink::new();
        let (r, _) = spill_supervisor(&parent, None).mine_out_of_core(&db, minsup, &mut reference);
        if let Err(e) = r {
            failures.push(format!("seed {seed}: reference spill run failed with {e}"));
            continue;
        }

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5713);
        let stop_at = rng.gen_range(0u64..=2);
        let token = cfp_fault::CancelToken::new();
        let mut sink = SpillInterruptSink {
            inner: CollectSink::new(),
            token: token.clone(),
            stop_at,
            watermarks: Vec::new(),
        };
        let (first, _) = spill_supervisor(&parent, Some(token))
            .mine_out_of_core_resumable(&db, minsup, &mut sink, None);
        match first {
            Ok(_) => {
                if sink.inner.itemsets != reference.itemsets {
                    failures.push(format!("seed {seed}: uninterrupted-by-luck run diverged"));
                }
            }
            Err(CfpError::Interrupted) => {
                interrupted_once = true;
                let Some((done, remaining, at_watermark)) = sink.watermarks.last().cloned() else {
                    failures.push(format!("seed {seed}: interrupted with no watermark"));
                    continue;
                };
                if sink.inner.itemsets.len() != at_watermark {
                    failures.push(format!(
                        "seed {seed}: {} itemsets emitted but watermark covered {at_watermark}",
                        sink.inner.itemsets.len()
                    ));
                    continue;
                }
                // Resume re-projects the surviving ranges from the
                // database — exactly what a post-crash run does.
                let mut resumed = CollectSink::new();
                let (second, _) = spill_supervisor(&parent, None).mine_out_of_core_resumable(
                    &db,
                    minsup,
                    &mut resumed,
                    Some((done, remaining)),
                );
                if let Err(e) = second {
                    failures.push(format!("seed {seed}: resume failed with {e}"));
                    continue;
                }
                let mut joined = sink.inner.itemsets;
                joined.extend(resumed.itemsets);
                if joined != reference.itemsets {
                    failures.push(format!(
                        "seed {seed}: interrupt at {done} part(s) + resume diverged \
                         ({} vs {} itemsets)",
                        joined.len(),
                        reference.itemsets.len()
                    ));
                }
            }
            Err(e) => failures.push(format!("seed {seed}: interrupt run failed with {e}")),
        }
        let _ = std::fs::remove_dir_all(&parent);
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    assert!(interrupted_once, "no seed ever interrupted — spill stop_at range is too lax");
}

fn sample_manifest() -> Manifest {
    Manifest {
        input: "/data/retail.dat".into(),
        min_support: 57,
        counts: "fnv1a:00ff00ff00ff00ff".into(),
        num_items: 16470,
        output: "all".into(),
        progress: CkptProgress::Spill { parts_done: 3, remaining: vec![(12, 400), (401, 950)] },
        output_bytes: 123_456_789,
        itemsets: 54_321,
    }
}

/// Suite 2a: seeded truncation fuzz. Every prefix-truncated manifest
/// either fails to load or (when only trailing whitespace was cut)
/// loads back equal to the original.
#[test]
fn manifest_truncation_fuzz_never_accepts_a_torn_manifest() {
    let dir = std::env::temp_dir().join(format!("cfp-ckpt-trunc-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let original = sample_manifest();
    ckpt::save(&dir, &original).unwrap();
    let full = std::fs::read(ckpt::manifest_path(&dir)).unwrap();

    let mut rng = StdRng::seed_from_u64(0xF072);
    let mut rejected = 0u32;
    for _ in 0..200 {
        let cut = rng.gen_range(0usize..full.len());
        std::fs::write(ckpt::manifest_path(&dir), &full[..cut]).unwrap();
        match ckpt::load(&dir) {
            Err(_) => rejected += 1,
            Ok(None) => panic!("a present manifest must not read as absent"),
            Ok(Some(m)) => {
                assert_eq!(m, original, "truncation at {cut} produced a different manifest");
                assert!(
                    full[cut..].iter().all(|b| b.is_ascii_whitespace()),
                    "truncation at {cut} dropped non-whitespace yet still loaded"
                );
            }
        }
    }
    assert!(rejected > 150, "only {rejected}/200 truncations rejected — checksum too lax");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Suite 2b: seeded byte-flip fuzz. A flipped byte anywhere in the
/// manifest must be rejected or produce an equal manifest — a checksum
/// collision that silently changes a field would corrupt a resume.
#[test]
fn manifest_byte_flip_fuzz_never_changes_a_field_silently() {
    let dir = std::env::temp_dir().join(format!("cfp-ckpt-flip-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let original = sample_manifest();
    ckpt::save(&dir, &original).unwrap();
    let full = std::fs::read(ckpt::manifest_path(&dir)).unwrap();

    let mut rng = StdRng::seed_from_u64(0xB17F);
    for _ in 0..200 {
        let mut damaged = full.clone();
        let at = rng.gen_range(0usize..damaged.len());
        let bit = 1u8 << rng.gen_range(0u32..8);
        damaged[at] ^= bit;
        std::fs::write(ckpt::manifest_path(&dir), &damaged).unwrap();
        match ckpt::load(&dir) {
            Err(_) | Ok(None) => {}
            Ok(Some(m)) => assert_eq!(
                m, original,
                "bit flip at byte {at} loaded a silently different manifest"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Suite 3: resume-skip boundary arithmetic on the sequential miner.
/// `resume_skip = 0` is a plain run; skipping every top-level item
/// yields an empty stream with zero itemsets counted.
#[test]
fn resume_skip_boundaries_behave_as_documented() {
    let db = TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);
    let minsup = 2;
    let n_items = ItemRecoder::scan(&db, minsup).num_items() as u64;
    let miner = CfpGrowthMiner::new();

    let mut plain = CollectSink::new();
    miner.mine(&db, minsup, &mut plain);

    let mut from_zero = CollectSink::new();
    let stats = miner.try_mine_with(&db, minsup, &mut from_zero, &MineOpts::default()).unwrap();
    assert_eq!(from_zero.itemsets, plain.itemsets);
    assert_eq!(stats.itemsets as usize, plain.itemsets.len());

    let mut all_skipped = CollectSink::new();
    let stats = miner
        .try_mine_with(
            &db,
            minsup,
            &mut all_skipped,
            &MineOpts { resume_skip: n_items, ..MineOpts::default() },
        )
        .unwrap();
    assert!(all_skipped.itemsets.is_empty(), "skipping every item must emit nothing");
    assert_eq!(stats.itemsets, 0);

    // Every split point reassembles the exact stream.
    for split in 1..n_items {
        let token = cfp_fault::CancelToken::new();
        let mut head = SplitSink { inner: CollectSink::new(), token: token.clone(), at: split };
        let r = miner.try_mine_with(
            &db,
            minsup,
            &mut head,
            &MineOpts { cancel: Some(token), ..MineOpts::default() },
        );
        assert!(matches!(r, Err(CfpError::Interrupted)), "split {split} did not interrupt");
        let mut tail = CollectSink::new();
        miner
            .try_mine_with(
                &db,
                minsup,
                &mut tail,
                &MineOpts { resume_skip: split, ..MineOpts::default() },
            )
            .unwrap();
        let mut joined = head.inner.itemsets;
        joined.extend(tail.itemsets);
        assert_eq!(joined, plain.itemsets, "split at watermark {split} diverged");
    }
}

/// Cancels exactly at watermark `at`.
struct SplitSink {
    inner: CollectSink,
    token: cfp_fault::CancelToken,
    at: u64,
}

impl ItemsetSink for SplitSink {
    fn emit(&mut self, itemset: &[Item], support: u64) {
        self.inner.emit(itemset, support);
    }

    fn progress(&mut self, progress: MineProgress<'_>) -> Result<(), CfpError> {
        if let MineProgress::Items { done } = progress {
            if done >= self.at {
                self.token.cancel();
            }
        }
        Ok(())
    }
}
