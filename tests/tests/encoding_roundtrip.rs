//! Randomized round-trip properties for every encoding primitive.
//!
//! Each codec in `cfp-encoding` is driven through explicit boundary
//! values (power-of-two edges, type extremes, format markers) plus a
//! seeded random sweep whose magnitudes are spread across the full bit
//! range (`next >> gen_range(0..64)`), so short and long encodings are
//! both exercised. Everything is deterministic: a failure reproduces
//! from the fixed seeds compiled into this file.

use cfp_data::rng::{Rng, StdRng};
use cfp_encoding::mask::{self, ChainHeader};
use cfp_encoding::{ptr40, varint, zerosup, zigzag, NodeMask, Ptr40};

const SEED: u64 = 0xC0DEC;
const RANDOM_VALUES: usize = 1000;

/// Boundary values around every varint length step, plus random values
/// with uniformly distributed bit widths.
fn u64_corpus() -> Vec<u64> {
    let mut values = vec![0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
    for k in [7u32, 14, 21, 28, 35, 42, 49, 56, 63] {
        let edge = 1u64 << k;
        values.extend([edge - 1, edge, edge + 1]);
    }
    let mut rng = StdRng::seed_from_u64(SEED);
    for _ in 0..RANDOM_VALUES {
        values.push(rng.gen::<u64>() >> rng.gen_range(0..64));
    }
    values
}

#[test]
fn varint_round_trips_and_all_paths_agree() {
    for v in u64_corpus() {
        let len = varint::encoded_len(v);
        assert!((1..=varint::MAX_LEN_U64).contains(&len), "encoded_len({v}) = {len} out of range");

        let mut vec_buf = Vec::new();
        assert_eq!(varint::write_u64(&mut vec_buf, v), len);
        assert_eq!(vec_buf.len(), len);

        let mut arr_buf = [0u8; varint::MAX_LEN_U64];
        assert_eq!(varint::write_u64_into(&mut arr_buf, v), len);
        assert_eq!(&arr_buf[..len], &vec_buf[..], "write paths disagree for {v}");

        assert_eq!(varint::read_u64(&vec_buf), Some((v, len)));
        assert_eq!(varint::read_u64_unchecked(&vec_buf), (v, len));
        assert_eq!(varint::skip(&vec_buf), len);

        // Every strict prefix is an incomplete encoding.
        for cut in 0..len {
            assert_eq!(varint::read_u64(&vec_buf[..cut]), None, "truncated read of {v} at {cut}");
        }

        if v <= u32::MAX as u64 {
            assert!(len <= varint::MAX_LEN_U32, "u32 value {v} took {len} bytes");
        }
    }
}

#[test]
fn varint_length_is_monotone_in_value() {
    let mut values = u64_corpus();
    values.sort_unstable();
    for pair in values.windows(2) {
        assert!(varint::encoded_len(pair[0]) <= varint::encoded_len(pair[1]));
    }
}

#[test]
fn zigzag_round_trips_and_keeps_small_magnitudes_small() {
    let mut corpus = vec![0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
    corpus.extend(u64_corpus().into_iter().map(|v| v as i64));
    for v in corpus {
        let encoded = zigzag::encode(v);
        assert_eq!(zigzag::decode(encoded), v, "zigzag round trip of {v}");
        // The defining property: |v| in [-2^k, 2^k) maps below 2^(k+1),
        // so small magnitudes get short varints regardless of sign.
        assert_eq!(encoded, v.unsigned_abs().wrapping_mul(2).wrapping_sub(u64::from(v < 0)));

        // Composition with varint — the on-disk form of signed fields.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, encoded);
        let (back, _) = varint::read_u64(&buf).expect("complete encoding");
        assert_eq!(zigzag::decode(back), v);
    }
}

#[test]
fn zerosup_widths_and_round_trips() {
    assert_eq!(zerosup::significant_bytes(0), 0);
    assert_eq!(zerosup::significant_bytes_min1(0), 1);
    for (v, bytes) in [
        (0xFFu32, 1),
        (0x100, 2),
        (0xFFFF, 2),
        (0x1_0000, 3),
        (0xFF_FFFF, 3),
        (0x100_0000, 4),
        (u32::MAX, 4),
    ] {
        assert_eq!(zerosup::significant_bytes(v), bytes, "width of {v:#x}");
    }

    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let mut corpus = vec![0u32, 1, 0xFF, 0x100, 0xFFFF, 0x1_0000, 0xFF_FFFF, 0x100_0000, u32::MAX];
    for _ in 0..RANDOM_VALUES {
        corpus.push(rng.gen::<u32>() >> rng.gen_range(0..32));
    }
    for v in corpus {
        let n = zerosup::significant_bytes_min1(v);
        assert_eq!(n, zerosup::significant_bytes(v).max(1));

        let mut fixed = [0u8; 4];
        zerosup::write_bytes(&mut fixed[..n], v, n);
        assert_eq!(zerosup::read_bytes(&fixed[..n], n), v, "slice round trip of {v:#x}");

        let mut out = Vec::new();
        zerosup::push_bytes(&mut out, v, n);
        assert_eq!(out.len(), n);
        assert_eq!(&out[..], &fixed[..n], "push/write disagree for {v:#x}");

        // Widening to the full 4 bytes must decode identically.
        let mut wide = [0u8; 4];
        zerosup::write_bytes(&mut wide, v, 4);
        assert_eq!(zerosup::read_bytes(&wide, 4), v);
    }
}

#[test]
fn ptr40_round_trips_and_never_collides_with_the_embed_marker() {
    assert!(Ptr40::NULL.is_null());
    assert!(!Ptr40::new(1).is_null());
    assert_eq!(Ptr40::new(ptr40::MAX_OFFSET).offset(), ptr40::MAX_OFFSET);

    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let mut corpus = vec![1u64, 2, 0xFFFF_FFFF, 0x1_0000_0000, ptr40::MAX_OFFSET];
    for _ in 0..RANDOM_VALUES {
        corpus.push(1 + (rng.gen::<u64>() >> rng.gen_range(24..64)) % ptr40::MAX_OFFSET);
    }
    for offset in corpus {
        let ptr = Ptr40::new(offset);
        assert_eq!(ptr.offset(), offset);

        let mut buf = [0u8; ptr40::PTR_BYTES];
        ptr.write(&mut buf);
        // Valid offsets stay below 0xFF << 32, so the top (big-endian
        // first) byte can never alias the embedded-suffix marker.
        assert_ne!(buf[0], ptr40::EMBED_MARKER, "offset {offset:#x} aliases the marker");
        assert_eq!(Ptr40::read(&buf).offset(), offset, "5-byte round trip of {offset:#x}");
    }
}

#[test]
fn raw40_round_trips_the_full_40_bit_range() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let mut corpus = vec![0u64, 1, (1u64 << 40) - 1, 0xFF_0000_0000];
    for _ in 0..RANDOM_VALUES {
        corpus.push((rng.gen::<u64>() >> rng.gen_range(24..64)) & ((1u64 << 40) - 1));
    }
    for v in corpus {
        let mut buf = [0u8; ptr40::PTR_BYTES];
        ptr40::write_raw40(&mut buf, v);
        assert_eq!(ptr40::read_raw40(&buf), v, "raw40 round trip of {v:#x}");
    }
}

#[test]
fn node_mask_round_trips_exhaustively() {
    // The whole NodeMask space is tiny — enumerate it instead of
    // sampling.
    for ditem_len in 1usize..=4 {
        for pcount_len in 0usize..=4 {
            for bits in 0u8..8 {
                let m = NodeMask {
                    ditem_len,
                    pcount_len,
                    has_left: bits & 1 != 0,
                    has_right: bits & 2 != 0,
                    has_suffix: bits & 4 != 0,
                };
                let byte = m.encode();
                assert!(!mask::is_chain(byte), "{m:?} encodes into the chain tag space");
                assert_eq!(NodeMask::decode(byte), m, "mask round trip of {byte:#04x}");
                let ptrs =
                    usize::from(m.has_left) + usize::from(m.has_right) + usize::from(m.has_suffix);
                assert_eq!(m.node_size(), 1 + ditem_len + pcount_len + ptr40::PTR_BYTES * ptrs);
            }
        }
    }
}

#[test]
fn chain_headers_round_trip_and_partition_the_byte_space() {
    for len in mask::MIN_CHAIN_LEN..=mask::MAX_CHAIN_LEN {
        for has_suffix in [false, true] {
            let h = ChainHeader { len, has_suffix };
            let byte = h.encode();
            assert!(mask::is_chain(byte), "chain header {h:?} not tagged as chain");
            assert_eq!(ChainHeader::decode(byte), h);
        }
    }
    // The embedded-suffix marker sits inside the chain tag space.
    assert!(mask::is_chain(ptr40::EMBED_MARKER));

    // Every byte is classified one way or the other, and the node-mask
    // encoder never produces a chain-tagged byte (checked exhaustively
    // above); count the split to pin the format down.
    let chain_bytes = (0u8..=255).filter(|&b| mask::is_chain(b)).count();
    assert_eq!(chain_bytes, 32, "chain tag must claim exactly the (b>>2)&7 == 7 quarter-page");
}
