//! Integration-test crate: shared helpers for the cross-crate tests in
//! `tests/`.

use cfp_baselines::all_miners;
use cfp_core::CfpGrowthMiner;
use cfp_data::{Miner, TransactionDb};

/// Every miner in the workspace, CFP-growth first.
pub fn full_roster() -> Vec<Box<dyn Miner>> {
    let mut miners: Vec<Box<dyn Miner>> = vec![Box::new(CfpGrowthMiner::new())];
    miners.extend(all_miners());
    miners
}

/// Mines with a collecting sink and returns canonically sorted results.
pub fn mine_sorted(
    miner: &dyn Miner,
    db: &TransactionDb,
    min_support: u64,
) -> Vec<(Vec<u32>, u64)> {
    let mut sink = cfp_core::CollectSink::new();
    miner.mine(db, min_support, &mut sink);
    sink.into_sorted()
}

/// Mines with a counting sink and returns `(count, support_sum, item_sum)`
/// — a cheap fingerprint for comparing algorithms on large inputs.
pub fn fingerprint(miner: &dyn Miner, db: &TransactionDb, min_support: u64) -> (u64, u64, u64) {
    let mut sink = cfp_core::CountingSink::new();
    miner.mine(db, min_support, &mut sink);
    (sink.count, sink.support_sum, sink.item_sum)
}
