//! Web-usage mining on a clickstream-shaped dataset (the paper's kosarak
//! workload): sweep the minimum support and watch how the tree, the
//! output, and the memory footprint grow — comparing CFP-growth with the
//! classic FP-growth baseline at every step.
//!
//! ```text
//! cargo run --release -p cfp-examples --bin clickstream
//! ```

use cfp_core::{CfpGrowthMiner, CountingSink, Miner};
use cfp_data::profiles;
use cfp_fptree::FpGrowthMiner;

fn main() {
    let profile = profiles::by_name("kosarak-like").expect("built-in profile");
    let db = profile.generate();
    println!(
        "dataset: {} transactions, {} distinct items, avg length {:.1}\n",
        db.len(),
        db.distinct_items(),
        db.avg_transaction_len()
    );

    println!(
        "{:>8}  {:>10}  {:>9}  {:>12}  {:>12}  {:>9}",
        "minsup", "itemsets", "nodes", "cfp peak", "fp peak", "reduction"
    );
    for fraction in [0.05, 0.02, 0.01, 0.005, 0.002] {
        let min_support = ((db.len() as f64 * fraction).ceil() as u64).max(1);
        let mut cfp_sink = CountingSink::new();
        let cfp = CfpGrowthMiner::new().mine(&db, min_support, &mut cfp_sink);
        let mut fp_sink = CountingSink::new();
        let fp = FpGrowthMiner::new().mine(&db, min_support, &mut fp_sink);
        assert_eq!(cfp_sink.count, fp_sink.count, "miners must agree");
        println!(
            "{:>8}  {:>10}  {:>9}  {:>12}  {:>12}  {:>8.1}x",
            min_support,
            cfp_sink.count,
            cfp.tree_nodes,
            cfp_metrics::fmt_bytes(cfp.peak_bytes),
            cfp_metrics::fmt_bytes(fp.peak_bytes),
            fp.peak_bytes as f64 / cfp.peak_bytes.max(1) as f64,
        );
    }
    println!("\n(reduction = FP-growth peak memory over CFP-growth peak memory)");
}
