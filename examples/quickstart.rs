//! Quickstart: mine frequent itemsets from a handful of transactions.
//!
//! ```text
//! cargo run --release -p cfp-examples --bin quickstart
//! ```

use cfp_core::{CfpGrowthMiner, CollectSink, Miner, TransactionDb};

fn main() {
    // A small market-basket database: item ids are arbitrary u32s.
    let db = TransactionDb::from_rows(&[
        vec![1, 2, 5],
        vec![2, 4],
        vec![2, 3],
        vec![1, 2, 4],
        vec![1, 3],
        vec![2, 3],
        vec![1, 3],
        vec![1, 2, 3, 5],
        vec![1, 2, 3],
    ]);

    // Mine everything occurring in at least 2 transactions.
    let min_support = 2;
    let mut sink = CollectSink::new();
    let stats = CfpGrowthMiner::new().mine(&db, min_support, &mut sink);

    println!("database: {} transactions, {} distinct items", db.len(), db.distinct_items());
    println!(
        "mined {} frequent itemsets in {:.2?} (peak memory {})",
        stats.itemsets,
        stats.total_time(),
        cfp_metrics::fmt_bytes(stats.peak_bytes),
    );
    println!();
    for (itemset, support) in sink.into_sorted() {
        println!("{itemset:?}  support {support}");
    }
}
