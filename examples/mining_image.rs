//! Build-once, mine-many with persisted mining images.
//!
//! Demonstrates the out-of-core-friendly workflow: generate a dataset to a
//! FIMI file, mine it straight from disk with the double-buffered
//! streaming pipeline, then build a compact [`cfp_core::MiningImage`]
//! (8–10x smaller than an FP-tree), persist it, reload it, and mine it
//! repeatedly at increasing support thresholds without touching the raw
//! data again.
//!
//! ```text
//! cargo run --release -p cfp-examples --bin mining_image
//! ```

use cfp_core::{mine_file, CfpGrowthMiner, CountingSink, MiningImage};
use cfp_data::{fimi, profiles};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("cfp_example_image");
    std::fs::create_dir_all(&dir)?;
    let data_path = dir.join("retail.dat");
    let image_path = dir.join("retail.cfpi");

    // 1. A dataset on disk, as it would arrive in practice.
    let profile = profiles::by_name("retail-like").expect("built-in profile");
    let db = profile.generate();
    fimi::write_file(&db, &data_path)?;
    let raw_size = std::fs::metadata(&data_path)?.len();
    println!("raw FIMI file: {}", cfp_metrics::fmt_bytes(raw_size));

    // 2. Stream-mine the file directly (two passes, two fixed buffers).
    let min_support = profile.absolute_support(&db, 2);
    let mut sink = CountingSink::new();
    let stats = mine_file(&CfpGrowthMiner::new(), &data_path, min_support, &mut sink)?;
    println!(
        "streamed mining at support {min_support}: {} itemsets in {:.2?}, peak {}",
        sink.count,
        stats.total_time(),
        cfp_metrics::fmt_bytes(stats.peak_bytes)
    );

    // 3. Build and persist a mining image at the lowest support of
    //    interest.
    let image = MiningImage::build(&db, min_support);
    image.save(&image_path)?;
    let image_size = std::fs::metadata(&image_path)?.len();
    println!(
        "mining image: {} on disk ({:.1}x smaller than the raw data), {} nodes",
        cfp_metrics::fmt_bytes(image_size),
        raw_size as f64 / image_size as f64,
        cfp_metrics::fmt_count(image.array().num_nodes()),
    );

    // 4. Reload and mine at several (higher) thresholds — no rescan.
    let loaded = MiningImage::load(&image_path)?;
    for factor in [1, 2, 4, 8] {
        let support = min_support * factor;
        let mut sink = CountingSink::new();
        let stats = loaded.mine(support, &mut sink);
        println!("  support {support:>6}: {:>7} itemsets in {:.2?}", sink.count, stats.mine_time);
    }

    std::fs::remove_file(&data_path).ok();
    std::fs::remove_file(&image_path).ok();
    Ok(())
}
