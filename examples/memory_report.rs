//! Memory anatomy of the compressed structures: builds the FP-tree, the
//! CFP-tree, and the CFP-array side by side on one dataset and prints the
//! full breakdown — bytes per node, node-kind population (standard /
//! chain / embedded), and the Table 1/2 leading-zero histograms.
//!
//! ```text
//! cargo run --release -p cfp-examples --bin memory_report [profile]
//! ```

use cfp_data::{profiles, ItemRecoder};
use cfp_fptree::FpTree;
use cfp_metrics::HeapSize;
use cfp_tree::CfpTree;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "webdocs-like".into());
    let Some(profile) = profiles::by_name(&name) else {
        eprintln!("unknown profile {name:?}; available:");
        for p in profiles::all() {
            eprintln!("  {:<16} {}", p.name, p.description);
        }
        std::process::exit(2);
    };
    let db = profile.generate();
    let min_support = profile.absolute_support(&db, 1);
    println!("profile {name}, minimum support {min_support}");
    println!(
        "{} transactions, {} distinct items, avg length {:.1}\n",
        db.len(),
        db.distinct_items(),
        db.avg_transaction_len()
    );

    let recoder = ItemRecoder::scan(&db, min_support);
    println!("frequent items: {}", recoder.num_items());

    let fp = FpTree::from_db(&db, &recoder);
    let cfp = CfpTree::from_db(&db, &recoder);
    let array = cfp_core::convert(&cfp);
    let nodes = cfp.num_nodes();
    assert_eq!(nodes, fp.num_nodes() as u64);

    println!("prefix-tree nodes: {}\n", cfp_metrics::fmt_count(nodes));
    println!("representation      total bytes     bytes/node   vs 40 B/node");
    let rows = [
        ("fp-tree (ours)", fp.heap_bytes(), FpTree::NODE_BYTES as f64),
        ("fp-tree (paper)", nodes * 40, 40.0),
        ("cfp-tree", cfp.arena_used(), cfp.avg_node_bytes()),
        ("cfp-array", array.data_bytes(), array.avg_node_bytes()),
    ];
    for (label, total, per_node) in rows {
        println!(
            "{label:<18}  {:>12}  {per_node:>11.2}  {:>10.1}x",
            cfp_metrics::fmt_bytes(total),
            40.0 / per_node,
        );
    }

    println!(
        "\narena: {} carved, {} live, {} in free queues ({:.2}% fragmentation)",
        cfp_metrics::fmt_bytes(cfp.arena_footprint()),
        cfp_metrics::fmt_bytes(cfp.arena_used()),
        cfp_metrics::fmt_bytes(cfp.arena().free_bytes()),
        cfp.arena().fragmentation() * 100.0,
    );

    let breakdown = cfp_tree::analysis::node_breakdown(&cfp);
    println!(
        "\ncfp-tree node population: {} standard, {} chain nodes holding {} entries, {} embedded leaves",
        cfp_metrics::fmt_count(breakdown.standard),
        cfp_metrics::fmt_count(breakdown.chain_nodes),
        cfp_metrics::fmt_count(breakdown.chain_entries),
        cfp_metrics::fmt_count(breakdown.embedded),
    );

    let t1 = cfp_fptree::analysis::analyze(&fp);
    println!("\nfp-tree leading-zero bytes (Table 1 layout; buckets 0..4):");
    for (field, hist) in t1.rows() {
        println!("  {field:<9} {}", hist.paper_row().replace('\t', "  "));
    }
    println!(
        "  => {:.0}% of all fp-tree field bytes are leading zeros",
        t1.zero_byte_fraction() * 100.0
    );

    let t2 = cfp_tree::analysis::analyze(&cfp);
    println!("\ncfp-tree leading-zero bytes (Table 2 layout):");
    println!("  {:<9} {}", "ditem", t2.ditem.paper_row().replace('\t', "  "));
    println!("  {:<9} {}", "pcount", t2.pcount.paper_row().replace('\t', "  "));

    let fields = cfp_array::stats::field_bytes(&array);
    let (d, p, c) = fields.per_node(array.num_nodes());
    println!("\ncfp-array bytes/node by field: ditem {d:.2}, dpos {p:.2}, count {c:.2}");
}
