//! Market-basket analysis on a retail-shaped dataset: the "customers who
//! bought this also bought …" use case from the paper's introduction.
//!
//! Generates a sparse retail-like dataset, mines the top associations with
//! CFP-growth, and derives simple association rules (confidence = support
//! of the pair over support of the antecedent).
//!
//! ```text
//! cargo run --release -p cfp-examples --bin market_basket
//! ```

use cfp_core::{CfpGrowthMiner, CollectSink, Miner};
use cfp_data::profiles;
use cfp_rules::{maximal_itemsets, RuleMiner};

fn main() {
    let profile = profiles::by_name("retail-like").expect("built-in profile");
    let db = profile.generate();
    let min_support = profile.absolute_support(&db, 1);
    println!(
        "dataset: {} transactions, {} distinct items, avg length {:.1}",
        db.len(),
        db.distinct_items(),
        db.avg_transaction_len()
    );
    println!("mining with minimum support {min_support}…");

    let mut sink = CollectSink::new();
    let stats = CfpGrowthMiner::new().mine(&db, min_support, &mut sink);
    let itemsets = sink.into_sorted();
    println!(
        "{} frequent itemsets in {:.2?} (peak memory {})\n",
        stats.itemsets,
        stats.total_time(),
        cfp_metrics::fmt_bytes(stats.peak_bytes)
    );

    // Condensed views of the result.
    let maximal = maximal_itemsets(&itemsets);
    println!("condensed: {} maximal itemsets describe the frequent border\n", maximal.len());

    // Association rules ("customers who bought ... also bought ...").
    let rule_miner = RuleMiner::new(&itemsets, db.len() as u64);
    let rules = rule_miner.rules_by_confidence(0.5);
    println!("top association rules (antecedent => consequent):");
    for r in rules.iter().take(15) {
        println!(
            "  {:?} => {:?}   support {:>5}   confidence {:>5.1}%   lift {:.2}",
            r.antecedent,
            r.consequent,
            r.support,
            r.confidence * 100.0,
            r.lift
        );
    }
    if rules.is_empty() {
        println!("  (no rules at this support/confidence level)");
    }
}
